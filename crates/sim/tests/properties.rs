//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use seer_sim::{EventQueue, SimLock, SimRng, ZipfTable};

proptest! {
    /// The event queue pops a total order: non-decreasing times, and FIFO
    /// among equal times — equivalent to a stable sort by time.
    #[test]
    fn event_queue_is_a_stable_sort(times in prop::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push(e);
        }
        prop_assert_eq!(popped, expected);
    }

    /// Interleaved pushes and pops still never go backwards in time, as
    /// long as pushes respect the watermark.
    #[test]
    fn event_queue_time_is_monotone(ops in prop::collection::vec((0u64..50, any::<bool>()), 1..300)) {
        let mut q = EventQueue::new();
        let mut last = 0u64;
        for (dt, pop) in ops {
            if pop {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            } else {
                q.push(last + dt, ());
            }
        }
    }

    /// Zipf sampling never leaves the table's bounds and the CDF is
    /// monotone.
    #[test]
    fn zipf_sample_in_bounds(n in 1usize..500, theta in 0.0f64..2.5, seed in any::<u64>()) {
        let table = ZipfTable::new(n, theta);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let i = rng.zipf(&table);
            prop_assert!(i < n);
        }
        // Monotone: higher u never maps to an earlier index... not strictly
        // required by the API, but partition_point over a CDF implies it.
        let lo = table.sample(0.0);
        let hi = table.sample(0.999_999_9);
        prop_assert!(lo <= hi);
    }

    /// Same seed => identical stream; derive(label) deterministic.
    #[test]
    fn rng_reproducibility(seed in any::<u64>(), label in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut da = SimRng::new(seed).derive(label);
        let mut db = SimRng::new(seed).derive(label);
        prop_assert_eq!(da.next_u64(), db.next_u64());
    }

    /// A lock subjected to arbitrary acquire/release/queue operations never
    /// double-grants ownership and conserves its waiters.
    #[test]
    fn lock_never_double_grants(ops in prop::collection::vec(0u8..4, 1..200)) {
        let mut lock = SimLock::new();
        let threads = 4usize;
        let mut parked: Vec<bool> = vec![false; threads];
        let mut now = 0u64;
        for (i, op) in ops.into_iter().enumerate() {
            now += 1;
            let t = i % threads;
            match op {
                0 => {
                    if !lock.is_held_by(t) && lock.try_acquire(t, now) {
                        prop_assert!(lock.is_held_by(t));
                    }
                }
                1 => {
                    if lock.is_held_by(t) {
                        let wake = lock.release(t, now);
                        prop_assert!(!lock.is_locked());
                        for a in &wake.acquirers {
                            prop_assert!(parked[*a]);
                            parked[*a] = false;
                        }
                    }
                }
                2 => {
                    if !lock.is_held_by(t) && !parked[t] && lock.is_locked() {
                        lock.enqueue_acquirer(t);
                        parked[t] = true;
                    }
                }
                _ => {
                    lock.add_watcher(t);
                }
            }
        }
    }
}
