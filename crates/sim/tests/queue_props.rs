//! Drop-in equivalence of the calendar queue with a binary-heap model.
//!
//! The simulation-kernel fast path replaced the event queue's `BinaryHeap`
//! with a bucketed calendar queue. These properties pin the contract that
//! makes the swap safe: against a straightforward binary-heap model, the
//! calendar queue must be observationally indistinguishable — pop for pop,
//! FIFO among equal times, and bit-identical in the trace hash — across
//! random streams, interleavings, and time deltas large enough to exercise
//! the overflow list and its wheel migration (the calendar's window is
//! `256 × 2¹² = 2²⁰` cycles).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;
use seer_sim::{Cycles, EventQueue};

/// The pre-calendar-queue implementation, kept as an executable model. A
/// max-heap of `Reverse<(time, seq, payload)>` is exactly "pop the
/// earliest time, FIFO among ties": `seq` increments per push, so the
/// lexicographic key breaks time ties by insertion order and never
/// compares payloads.
struct HeapModel {
    heap: BinaryHeap<Reverse<(Cycles, u64, usize)>>,
    seq: u64,
    watermark: Cycles,
    hash: u64,
}

impl HeapModel {
    fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            watermark: 0,
            hash: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
        }
    }

    fn push(&mut self, time: Cycles, payload: usize) {
        self.heap.push(Reverse((time, self.seq, payload)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(Cycles, usize)> {
        let Reverse((time, seq, payload)) = self.heap.pop()?;
        self.watermark = time;
        for word in [time, seq] {
            for byte in word.to_le_bytes() {
                self.hash ^= u64::from(byte);
                self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        Some((time, payload))
    }
}

/// Drains both queues and asserts identical pop sequences and hashes.
fn drain_and_compare(q: &mut EventQueue<usize>, model: &mut HeapModel) {
    loop {
        let (got, want) = (q.pop(), model.pop());
        assert_eq!(got, want);
        if got.is_none() {
            break;
        }
    }
    assert_eq!(q.trace_hash(), model.hash, "trace hashes diverged");
}

proptest! {
    /// Random streams within one calendar window: identical pop order and
    /// trace hash.
    #[test]
    fn matches_heap_on_random_streams(times in prop::collection::vec(0u64..1 << 18, 0..300)) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
            model.push(t, i);
        }
        drain_and_compare(&mut q, &mut model);
    }

    /// Heavy ties: times drawn from a tiny domain, so most events collide
    /// and the order is decided almost entirely by FIFO stability.
    #[test]
    fn matches_heap_under_heavy_ties(times in prop::collection::vec(0u64..4, 0..300)) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
            model.push(t, i);
        }
        drain_and_compare(&mut q, &mut model);
    }

    /// Interleaved pushes and pops, with pushes anchored at the current
    /// watermark (the causality contract every DES caller obeys). The
    /// calendar's lazily sorted current bucket must accept mid-drain
    /// insertions without reordering.
    #[test]
    fn matches_heap_interleaved(ops in prop::collection::vec((0u64..5000, any::<bool>()), 1..400)) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::new();
        let mut i = 0;
        for (dt, pop) in ops {
            if pop {
                prop_assert_eq!(q.pop(), model.pop());
            } else {
                let t = model.watermark + dt;
                q.push(t, i);
                model.push(t, i);
                i += 1;
            }
        }
        drain_and_compare(&mut q, &mut model);
    }

    /// Deltas past the 2²⁰-cycle wheel window: events land on the overflow
    /// list and must migrate back in the same order the heap would produce.
    #[test]
    fn matches_heap_across_window_overflow(
        ops in prop::collection::vec((0u64..1 << 22, 0u8..4), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::new();
        let mut i = 0;
        for (dt, kind) in ops {
            // kind 0: pop; otherwise push (biased towards pushes so the
            // queue builds depth spanning several windows).
            if kind == 0 {
                prop_assert_eq!(q.pop(), model.pop());
            } else {
                let t = model.watermark + dt;
                q.push(t, i);
                model.push(t, i);
                i += 1;
            }
        }
        drain_and_compare(&mut q, &mut model);
    }

    /// Draining to empty and refilling much later (virtual time jumped
    /// while the queue was idle) must not disturb equivalence — this is
    /// the empty-queue window-snap path of the calendar.
    #[test]
    fn matches_heap_across_idle_time_jumps(
        rounds in prop::collection::vec(
            (0u64..1 << 24, prop::collection::vec(0u64..1 << 16, 1..40)),
            1..10,
        ),
    ) {
        let mut q = EventQueue::new();
        let mut model = HeapModel::new();
        let mut i = 0;
        for (jump, deltas) in rounds {
            let base = model.watermark + jump;
            for &dt in &deltas {
                q.push(base + dt, i);
                model.push(base + dt, i);
                i += 1;
            }
            drain_and_compare(&mut q, &mut model);
        }
    }
}
