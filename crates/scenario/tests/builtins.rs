//! The built-in library's behavioural contract under the full Seer
//! scheduler (seed 0 — runs are deterministic, so these are exact).

use seer_harness::PolicyKind;
use seer_scenario::{library, RunRequest};

#[test]
fn every_builtin_recovers_under_seer() {
    for spec in library::all() {
        let outcome = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
        let report = &outcome.report;
        assert!(
            !report.scores.is_empty(),
            "{}: every built-in's disturbances must fire before the run ends",
            spec.name
        );
        for s in &report.scores {
            assert!(
                s.at < outcome.metrics.makespan,
                "{}: scored disturbance {} at {} is past makespan {}",
                spec.name,
                s.label,
                s.at,
                outcome.metrics.makespan
            );
            assert!(
                s.baseline_throughput > 0.0,
                "{}: {} needs a warm pre-disturbance baseline",
                spec.name,
                s.label
            );
        }
        assert!(
            report.recovered,
            "{}: Seer must re-converge after every disturbance: {:?}",
            spec.name, report.scores
        );
        assert!(
            report.scores.iter().any(|s| s.pairs_stable_at.is_some()),
            "{}: Seer's inference stream must stabilize post-disturbance",
            spec.name
        );
    }
}

#[test]
fn heavy_faults_cause_real_regressions() {
    // The disruptive built-ins must actually dent throughput — a scenario
    // whose fault is invisible in the windows scores nothing.
    for (name, min_depth) in [("capacity-cliff", 0.3), ("churn-storm", 0.3), ("hot-set-drift", 0.2)]
    {
        let spec = library::builtin(name).unwrap();
        let outcome = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
        let deepest = outcome
            .report
            .scores
            .iter()
            .map(|s| s.regression_depth)
            .fold(0.0, f64::max);
        assert!(
            deepest >= min_depth,
            "{name}: deepest regression {deepest:.3} under the {min_depth} floor"
        );
    }
}
