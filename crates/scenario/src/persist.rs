//! Store identity and lossless shard codec for scenario outcomes.
//!
//! `seer-store` owns the traits and the `RunMetrics` codec; this module
//! adds the scenario-shaped halves next to the types they serialize:
//! [`ScenarioKey`] gets a [`StoreKey`] identity, and [`ScenarioOutcome`]
//! gets a [`Persist`] round-trip covering all three of its parts —
//! metrics (via the store's `RunMetrics` codec), the windowed slice, and
//! the recovery report. The report's `ToJson` already defines the
//! committed fixture schema, so persistence reuses it verbatim and only
//! adds the parser.

use seer_harness::{Json, ToJson};
use seer_runtime::{MetricsWindow, RunMetrics, WindowedMetrics};
use seer_store::{Persist, StoreKey};

use crate::exec::ScenarioKey;
use crate::report::{RecoveryReport, RecoveryScore};
use crate::runner::ScenarioOutcome;

impl StoreKey for ScenarioKey {
    const KIND: &'static str = "scenario";

    fn key_id(&self) -> String {
        format!("{}/{}/s{}", self.scenario, self.policy.spec(), self.seed)
    }

    fn key_json(&self) -> Json {
        Json::object([
            ("scenario", self.scenario.to_json()),
            ("policy", self.policy.spec().to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

fn field<'a>(json: &'a Json, name: &str) -> Result<&'a Json, String> {
    json.get(name).ok_or_else(|| format!("missing field {name:?}"))
}

fn u64_field(json: &Json, name: &str) -> Result<u64, String> {
    field(json, name)?
        .as_u64()
        .ok_or_else(|| format!("field {name:?} is not a u64"))
}

fn f64_field(json: &Json, name: &str) -> Result<f64, String> {
    field(json, name)?
        .as_f64()
        .ok_or_else(|| format!("field {name:?} is not a number"))
}

fn str_field(json: &Json, name: &str) -> Result<String, String> {
    Ok(field(json, name)?
        .as_str()
        .ok_or_else(|| format!("field {name:?} is not a string"))?
        .to_string())
}

fn opt_u64_field(json: &Json, name: &str) -> Result<Option<u64>, String> {
    match field(json, name)? {
        Json::Null => Ok(None),
        v => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {name:?} is neither null nor a u64")),
    }
}

fn window_json(w: &MetricsWindow) -> Json {
    Json::object([
        ("from", w.from.to_json()),
        ("to", w.to.to_json()),
        ("commits", w.commits.to_json()),
        ("htm_commits", w.htm_commits.to_json()),
        ("fallback_commits", w.fallback_commits.to_json()),
        ("aborts", w.aborts.to_json()),
        ("attempts", w.attempts.to_json()),
        ("fallbacks_entered", w.fallbacks_entered.to_json()),
    ])
}

fn window_from_json(json: &Json) -> Result<MetricsWindow, String> {
    Ok(MetricsWindow {
        from: u64_field(json, "from")?,
        to: u64_field(json, "to")?,
        commits: u64_field(json, "commits")?,
        htm_commits: u64_field(json, "htm_commits")?,
        fallback_commits: u64_field(json, "fallback_commits")?,
        aborts: u64_field(json, "aborts")?,
        attempts: u64_field(json, "attempts")?,
        fallbacks_entered: u64_field(json, "fallbacks_entered")?,
    })
}

fn score_from_json(json: &Json) -> Result<RecoveryScore, String> {
    Ok(RecoveryScore {
        label: str_field(json, "label")?,
        at: u64_field(json, "at")?,
        baseline_throughput: f64_field(json, "baseline_throughput")?,
        min_throughput: f64_field(json, "min_throughput")?,
        regression_depth: f64_field(json, "regression_depth")?,
        reconverged_at: opt_u64_field(json, "reconverged_at")?,
        time_to_reconverge: opt_u64_field(json, "time_to_reconverge")?,
        pairs_stable_at: opt_u64_field(json, "pairs_stable_at")?,
    })
}

/// Parses a [`RecoveryReport`] back from its committed `ToJson` schema —
/// the inverse the fixtures never needed until results became durable.
pub fn report_from_json(json: &Json) -> Result<RecoveryReport, String> {
    let scores = field(json, "scores")?
        .as_array()
        .ok_or("\"scores\" is not an array")?
        .iter()
        .map(score_from_json)
        .collect::<Result<Vec<_>, String>>()?;
    Ok(RecoveryReport {
        scenario: str_field(json, "scenario")?,
        policy: str_field(json, "policy")?,
        seed: u64_field(json, "seed")?,
        window: u64_field(json, "window")?,
        makespan: u64_field(json, "makespan")?,
        commits: u64_field(json, "commits")?,
        throughput: f64_field(json, "throughput")?,
        trace_hash: u64_field(json, "trace_hash")?,
        steady_state_delta: f64_field(json, "steady_state_delta")?,
        recovered: field(json, "recovered")?
            .as_bool()
            .ok_or("\"recovered\" is not a bool")?,
        scores,
    })
}

impl Persist for ScenarioOutcome {
    fn to_store_json(&self) -> Json {
        Json::object([
            ("metrics", self.metrics.to_store_json()),
            (
                "windows",
                Json::object([
                    ("width", self.windows.width().to_json()),
                    (
                        "windows",
                        Json::Array(self.windows.windows().iter().map(window_json).collect()),
                    ),
                ]),
            ),
            ("report", self.report.to_json()),
        ])
    }

    fn from_store_json(json: &Json) -> Result<Self, String> {
        let metrics = RunMetrics::from_store_json(field(json, "metrics")?)
            .map_err(|e| format!("metrics: {e}"))?;
        let windows_json = field(json, "windows")?;
        let width = u64_field(windows_json, "width")?;
        if width == 0 {
            return Err("window width must be positive".to_string());
        }
        let windows = field(windows_json, "windows")?
            .as_array()
            .ok_or("\"windows\" is not an array")?
            .iter()
            .map(window_from_json)
            .collect::<Result<Vec<_>, String>>()?;
        let report = report_from_json(field(json, "report")?)
            .map_err(|e| format!("report: {e}"))?;
        Ok(ScenarioOutcome {
            metrics,
            windows: WindowedMetrics::from_windows(width, windows),
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::request::RunRequest;
    use seer_harness::PolicyKind;

    #[test]
    fn scenario_outcome_round_trip_is_lossless() {
        let spec = library::builtin("stats-amnesia").unwrap();
        let outcome = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
        let json = outcome.to_store_json();
        // Through the tree and through the actual byte serialization.
        let back = ScenarioOutcome::from_store_json(&json).expect("round trip");
        assert_eq!(back.metrics.trace_hash, outcome.metrics.trace_hash);
        assert_eq!(format!("{:?}", back.metrics), format!("{:?}", outcome.metrics));
        assert_eq!(back.windows, outcome.windows);
        assert_eq!(back.report, outcome.report);
        let reparsed = Json::parse(&json.to_string_compact()).expect("parse");
        let back2 = ScenarioOutcome::from_store_json(&reparsed).expect("byte round trip");
        assert_eq!(back2.report, outcome.report);
        assert_eq!(back2.windows, outcome.windows);
    }

    #[test]
    fn malformed_outcome_is_an_error_not_a_panic() {
        assert!(ScenarioOutcome::from_store_json(&Json::Null).is_err());
        let spec = library::builtin("churn-storm").unwrap();
        let outcome = RunRequest::scenario(&spec).policy(PolicyKind::Rtm).run();
        let mut json = outcome.to_store_json();
        if let Json::Object(fields) = &mut json {
            for (k, v) in fields.iter_mut() {
                if k == "windows" {
                    *v = Json::object([("width", 0u64.to_json()), ("windows", Json::Array(vec![]))]);
                }
            }
        }
        assert!(ScenarioOutcome::from_store_json(&json).is_err());
    }

    #[test]
    fn key_ids_are_unique() {
        let a = ScenarioKey {
            scenario: "phase-flip".into(),
            policy: PolicyKind::Seer,
            seed: 0,
        };
        let mut b = a.clone();
        b.seed = 1;
        let mut c = a.clone();
        c.policy = PolicyKind::Rtm;
        assert_ne!(a.key_id(), b.key_id());
        assert_ne!(a.key_id(), c.key_id());
    }
}
