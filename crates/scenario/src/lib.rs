//! # seer-scenario — non-stationary workloads, fault injection, and
//! re-convergence scoring
//!
//! The paper evaluates Seer on stationary workloads; its central claim,
//! though, is *adaptivity* — the probabilistic profile, the inference
//! rounds and the hill climber exist to track a moving target. This crate
//! makes that claim testable (DESIGN.md §11):
//!
//! * [`ScenarioSpec`] — a pure-data script: timed workload phases
//!   (benchmark mix, hot-set skew, think-time scaling), a thread-churn
//!   schedule, and fault injections (stats wipe, inference delay,
//!   threshold kick, lock-holder stall, capacity shrink). Parses from and
//!   serializes to the workspace's dependency-free JSON.
//! * [`ScenarioWorkload`] — composes the phases' STAMP models into one
//!   `Workload`, pinning retries and commits to the issuing model.
//! * [`RunRequest`] — the workspace's one entry point for runs: compiles
//!   the spec to the driver's timed-directive script and runs it through
//!   the ordinary traced driver; every disturbance is a scheduled discrete
//!   event, so runs are bit-identical on replay and under any `--jobs`
//!   fan-out.
//! * [`RecoveryReport`] — scores the scheduler's reaction on windowed
//!   metrics and the inference trace: regression depth, time to
//!   re-converge, pair-set stabilization, steady-state delta.
//! * [`ScenarioExecutor`] — the memoizing, parallel, store-backed
//!   executor over the built-in [`library`] (phase-flip, churn-storm,
//!   stats-amnesia, threshold-kick, capacity-cliff, hot-set-drift).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod exec;
pub mod library;
pub mod persist;
pub mod report;
pub mod request;
pub mod runner;
pub mod spec;
pub mod workload;

pub use exec::{ScenarioExecutor, ScenarioKey, ScenarioPlan};
pub use persist::report_from_json;
pub use report::{RecoveryReport, RecoveryScore, RECOVERY_FRACTION};
pub use request::{CellRun, RunRequest, ScenarioRun};
pub use runner::{execute_scenario, ScenarioOutcome};
pub use spec::{
    benchmark_from_name, ChurnSpec, FaultKind, FaultSpec, PhaseSpec, ScenarioSpec,
};
pub use workload::ScenarioWorkload;
