//! Phase-switching workload adapter.
//!
//! [`ScenarioWorkload`] composes the STAMP models a spec's phases name
//! into one `Workload`: transactions are drawn from the *active* phase's
//! model, with the phase's hot-set skew and think-time scaling applied at
//! issue (and skew re-applied on retry regeneration). The driver flips the
//! active phase by calling [`Workload::on_phase`] when it pops a
//! `Directive::Phase` event, so regime changes land at exact scheduled
//! cycles.
//!
//! Two invariants make phase flips safe mid-transaction:
//!
//! * **Issuer pinning** — a transaction's retries and commit are routed to
//!   the model that *issued* it (`issued_by`), never the newly active one,
//!   so regeneration preserves the block identity the scheduler has been
//!   profiling.
//! * **Fixed total work** — the adapter owns the per-thread transaction
//!   quota (the base benchmark's scaled count); each underlying model is
//!   built with that full quota as capacity, so the amount of work a run
//!   performs does not depend on where the phase boundaries fall.

use seer_runtime::{TxRequest, Workload};
use seer_sim::{Cycles, SimRng, ThreadId};
use seer_stamp::model::{PRIVATE_BASE, REGION_STRIDE};
use seer_stamp::{Benchmark, StampModel};

use crate::spec::ScenarioSpec;

/// A `Workload` that switches regimes at scenario phase boundaries.
#[derive(Debug)]
pub struct ScenarioWorkload {
    name: String,
    models: Vec<StampModel>,
    phase_model: Vec<usize>,
    phase_skew: Vec<f64>,
    phase_think: Vec<f64>,
    active: usize,
    issued_by: Vec<usize>,
    remaining: Vec<usize>,
    blocks: usize,
}

impl ScenarioWorkload {
    /// Instantiates the models for every distinct benchmark the spec's
    /// phases reference. The per-thread quota is the *base* benchmark's
    /// scaled transaction count.
    pub fn new(spec: &ScenarioSpec) -> Self {
        let quota = spec.benchmark.scaled_txs(spec.scale);
        let mut benchmarks: Vec<Benchmark> = Vec::new();
        let mut phase_model = Vec::new();
        for p in &spec.phases {
            let b = p.benchmark.unwrap_or(spec.benchmark);
            let idx = match benchmarks.iter().position(|&x| x == b) {
                Some(i) => i,
                None => {
                    benchmarks.push(b);
                    benchmarks.len() - 1
                }
            };
            phase_model.push(idx);
        }
        let models: Vec<StampModel> = benchmarks
            .iter()
            .map(|b| b.instantiate(spec.threads, quota))
            .collect();
        let blocks = models
            .iter()
            .map(|m| m.num_blocks())
            .max()
            .expect("a spec has at least one phase");
        ScenarioWorkload {
            name: spec.name.clone(),
            models,
            phase_model,
            phase_skew: spec.phases.iter().map(|p| p.skew).collect(),
            phase_think: spec.phases.iter().map(|p| p.think_scale).collect(),
            active: 0,
            issued_by: vec![0; spec.threads],
            remaining: vec![quota; spec.threads],
            blocks,
        }
    }

    /// Per-thread transaction quota (fixed for the whole run).
    pub fn quota(&self) -> usize {
        self.remaining.iter().copied().max().unwrap_or(0)
    }

    /// Compresses the shared-line offsets of `req` by the active phase's
    /// skew, concentrating traffic on the head of each region. Private
    /// lines are untouched, so capacity pressure stays realistic.
    fn apply_skew(&self, req: &mut TxRequest) {
        let skew = self.phase_skew[self.active];
        if skew >= 1.0 {
            return;
        }
        for a in &mut req.accesses {
            if a.line < PRIVATE_BASE {
                let region = a.line / REGION_STRIDE;
                let offset = a.line % REGION_STRIDE;
                a.line = region * REGION_STRIDE + (offset as f64 * skew) as u64;
            }
        }
    }
}

impl Workload for ScenarioWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_blocks(&self) -> usize {
        self.blocks
    }

    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
        if self.remaining[thread] == 0 {
            return None;
        }
        let model = self.phase_model[self.active];
        // Every model's capacity equals the whole-run quota, so the active
        // model cannot run dry before the scenario's own budget does.
        let mut req = self.models[model].next(thread, rng)?;
        self.remaining[thread] -= 1;
        self.issued_by[thread] = model;
        req.think = (req.think as f64 * self.phase_think[self.active]) as Cycles;
        self.apply_skew(&mut req);
        Some(req)
    }

    fn regenerate(&mut self, thread: ThreadId, req: &mut TxRequest, rng: &mut SimRng) {
        // Retries re-execute the block the *issuing* model defined, under
        // the skew of the phase in force now.
        self.models[self.issued_by[thread]].regenerate(thread, req, rng);
        self.apply_skew(req);
    }

    fn commit(&mut self, thread: ThreadId, req: &TxRequest, rng: &mut SimRng) {
        self.models[self.issued_by[thread]].commit(thread, req, rng);
    }

    fn on_phase(&mut self, phase: usize) {
        if phase < self.phase_model.len() {
            self.active = phase;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PhaseSpec;

    fn spec_two_phases() -> ScenarioSpec {
        let mut spec =
            ScenarioSpec::stationary("wl-test", Benchmark::Ssca2, 2, 0.05, 50_000);
        spec.phases.push(PhaseSpec {
            at: 10_000,
            benchmark: Some(Benchmark::KmeansHigh),
            skew: 0.25,
            think_scale: 3.0,
        });
        spec
    }

    #[test]
    fn quota_is_fixed_by_the_base_benchmark() {
        let spec = spec_two_phases();
        let mut w = ScenarioWorkload::new(&spec);
        let quota = Benchmark::Ssca2.scaled_txs(0.05);
        assert_eq!(w.quota(), quota);
        let mut rng = SimRng::new(1);
        let mut drawn = 0;
        while w.next(0, &mut rng).is_some() {
            drawn += 1;
        }
        assert_eq!(drawn, quota, "thread 0 draws exactly the quota");
        assert!(w.next(0, &mut rng).is_none());
        assert!(w.next(1, &mut rng).is_some(), "thread 1 unaffected");
    }

    #[test]
    fn phase_flip_switches_the_issuing_model() {
        let spec = spec_two_phases();
        let mut w = ScenarioWorkload::new(&spec);
        let mut rng = SimRng::new(2);
        let before = w.next(0, &mut rng).unwrap();
        w.on_phase(1);
        let after = w.next(0, &mut rng).unwrap();
        // Think scaling of phase 1 applies to the new draw only.
        assert!(after.is_well_formed());
        assert!(before.is_well_formed());
        // The two models expose different block sets; num_blocks covers both.
        assert!(w.num_blocks() >= Benchmark::Ssca2.instantiate(2, 5).num_blocks());
        assert!(after.block < w.num_blocks());
    }

    #[test]
    fn skew_compresses_shared_lines_only() {
        let mut spec = ScenarioSpec::stationary("skew", Benchmark::Ssca2, 1, 0.05, 50_000);
        spec.phases.push(PhaseSpec {
            at: 1,
            benchmark: None,
            skew: 0.01,
            think_scale: 1.0,
        });
        let mut w = ScenarioWorkload::new(&spec);
        w.on_phase(1);
        let mut rng = SimRng::new(3);
        let mut saw_shared = false;
        for _ in 0..20 {
            let Some(req) = w.next(0, &mut rng) else { break };
            for a in &req.accesses {
                if a.line < PRIVATE_BASE {
                    saw_shared = true;
                    let offset = a.line % REGION_STRIDE;
                    assert!(
                        offset < REGION_STRIDE / 50,
                        "offset {offset} not compressed by skew 0.01"
                    );
                } else {
                    assert!(a.line >= PRIVATE_BASE, "private lines untouched");
                }
            }
        }
        assert!(saw_shared, "test needs at least one shared access");
    }

    #[test]
    fn regenerate_goes_to_the_issuing_model() {
        let spec = spec_two_phases();
        let mut w = ScenarioWorkload::new(&spec);
        let mut rng = SimRng::new(4);
        let mut req = w.next(0, &mut rng).unwrap();
        let (block, think) = (req.block, req.think);
        // Flip phases mid-transaction; the retry must preserve identity.
        w.on_phase(1);
        w.regenerate(0, &mut req, &mut rng);
        assert_eq!(req.block, block, "retry must re-execute the same block");
        assert_eq!(req.think, think, "regeneration preserves think time");
        assert!(req.is_well_formed());
    }

    #[test]
    fn think_scale_multiplies_think_time() {
        let mut spec = ScenarioSpec::stationary("think", Benchmark::Ssca2, 1, 0.05, 50_000);
        spec.phases.push(PhaseSpec {
            at: 1,
            benchmark: None,
            skew: 1.0,
            think_scale: 10.0,
        });
        // Same seed, two adapters: one in phase 0, one flipped to phase 1.
        let mut w0 = ScenarioWorkload::new(&spec);
        let mut w1 = ScenarioWorkload::new(&spec);
        w1.on_phase(1);
        let mut r0 = SimRng::new(5);
        let mut r1 = SimRng::new(5);
        let a = w0.next(0, &mut r0).unwrap();
        let b = w1.next(0, &mut r1).unwrap();
        assert_eq!(b.think, a.think * 10, "think time scales by the phase factor");
    }
}
