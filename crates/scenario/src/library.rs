//! The built-in scenario library.
//!
//! Six canonical disturbance patterns, each isolating one thing the
//! scheduler must survive. All run 4 threads on the paper machine with a
//! 100k-cycle scoring window; disturbances land once the run is warm
//! (after the first few inference rounds) and leave enough tail for
//! re-convergence to be observable.

use crate::spec::{ChurnSpec, FaultKind, FaultSpec, PhaseSpec, ScenarioSpec};
use seer_stamp::Benchmark;

/// Scoring window width shared by every built-in.
const WINDOW: u64 = 100_000;

/// Names of the built-in scenarios, in presentation order.
pub const BUILTIN_NAMES: [&str; 6] = [
    "phase-flip",
    "churn-storm",
    "stats-amnesia",
    "threshold-kick",
    "capacity-cliff",
    "hot-set-drift",
];

/// Looks up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<ScenarioSpec> {
    let spec = match name {
        "phase-flip" => phase_flip(),
        "churn-storm" => churn_storm(),
        "stats-amnesia" => stats_amnesia(),
        "threshold-kick" => threshold_kick(),
        "capacity-cliff" => capacity_cliff(),
        "hot-set-drift" => hot_set_drift(),
        _ => return None,
    };
    Some(spec)
}

/// Every built-in scenario, in [`BUILTIN_NAMES`] order.
pub fn all() -> Vec<ScenarioSpec> {
    BUILTIN_NAMES
        .iter()
        .map(|n| builtin(n).expect("names enumerate the library"))
        .collect()
}

/// Benchmark-mix flip: the profile Seer learned for the high-contention
/// regime is stale for the low-contention one (same block count,
/// different conflict topology), so over-serialization must be unlearned.
fn phase_flip() -> ScenarioSpec {
    let mut spec = ScenarioSpec::stationary("phase-flip", Benchmark::KmeansHigh, 4, 2.0, WINDOW);
    spec.phases.push(PhaseSpec {
        at: 400_000,
        benchmark: Some(Benchmark::KmeansLow),
        skew: 1.0,
        think_scale: 1.0,
    });
    spec
}

/// Staggered park of three of the four threads, then staggered return:
/// the statistics gathered at full parallelism describe a machine that
/// briefly no longer exists.
fn churn_storm() -> ScenarioSpec {
    let mut spec = ScenarioSpec::stationary("churn-storm", Benchmark::Ssca2, 4, 1.5, WINDOW);
    for (thread, park_at, unpark_at) in
        [(1, 200_000, 380_000), (2, 260_000, 440_000), (3, 320_000, 500_000)]
    {
        spec.churn.push(ChurnSpec {
            at: park_at,
            thread,
            park: true,
        });
        spec.churn.push(ChurnSpec {
            at: unpark_at,
            thread,
            park: false,
        });
    }
    spec
}

/// Statistics wipe mid-run: the learned conflict profile vanishes and
/// must be re-accumulated from scratch.
fn stats_amnesia() -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::stationary("stats-amnesia", Benchmark::KmeansHigh, 4, 2.0, WINDOW);
    spec.faults.push(FaultSpec {
        at: 500_000,
        fault: FaultKind::WipeStats,
    });
    spec
}

/// Adversarial threshold perturbation: Th1 is kicked near 1 (serialize
/// almost nothing) and the hill climber has to walk back.
fn threshold_kick() -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::stationary("threshold-kick", Benchmark::VacationHigh, 4, 2.0, WINDOW);
    spec.faults.push(FaultSpec {
        at: 300_000,
        fault: FaultKind::KickThresholds { th1: 0.99, th2: 0.99 },
    });
    spec
}

/// Capacity-pressure burst: the HTM budgets collapse for 200k cycles,
/// shoving transactions onto the fall-back path, then restore.
fn capacity_cliff() -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::stationary("capacity-cliff", Benchmark::Genome, 4, 2.0, WINDOW);
    spec.faults.push(FaultSpec {
        at: 300_000,
        fault: FaultKind::CapacityShrink {
            ways: Some(1),
            read_lines: Some(4),
            restore_after: 200_000,
        },
    });
    spec
}

/// Hot-set drift: the shared working set collapses to 5% of its span and
/// later relaxes, moving the conflict probabilities without changing the
/// block structure.
fn hot_set_drift() -> ScenarioSpec {
    let mut spec =
        ScenarioSpec::stationary("hot-set-drift", Benchmark::Intruder, 4, 3.0, WINDOW);
    spec.phases.push(PhaseSpec {
        at: 250_000,
        benchmark: None,
        skew: 0.05,
        think_scale: 1.0,
    });
    spec.phases.push(PhaseSpec {
        at: 500_000,
        benchmark: None,
        skew: 1.0,
        think_scale: 1.0,
    });
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_validates_and_compiles() {
        for name in BUILTIN_NAMES {
            let spec = builtin(name).expect(name);
            assert_eq!(spec.name, name);
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                !spec.compile().is_empty(),
                "{name}: a built-in must script at least one directive"
            );
            assert!(
                !spec.disturbances().is_empty(),
                "{name}: a built-in must have scorable disturbances"
            );
        }
        assert!(builtin("no-such-scenario").is_none());
        assert_eq!(all().len(), BUILTIN_NAMES.len());
    }

    #[test]
    fn builtins_round_trip_through_json() {
        for spec in all() {
            let text = spec.to_json().to_string_pretty();
            let back = ScenarioSpec::parse(&text).unwrap();
            assert_eq!(back, spec, "{}", spec.name);
        }
    }
}
