//! Schema checker for RecoveryReport JSON (CI gate).
//!
//! Validates the output of `seer scenario run --json true` — a single
//! report object or an array of them — against the schema documented in
//! DESIGN.md §11: required fields with the right JSON types, finite
//! numbers, per-score consistency (a re-convergence time exists exactly
//! when a re-convergence window was found, the regression depth matches
//! the baseline/min throughputs), and the report-level `recovered` verdict
//! agreeing with its scores. Exits non-zero on the first violation; on
//! success prints a per-file summary.
//!
//! Usage: `scenario_check <reports.json>...`

use std::process::ExitCode;

use seer_harness::Json;

fn req_u64(rec: &Json, name: &str) -> Result<u64, String> {
    rec.get(name)
        .and_then(|v| v.as_u64())
        .ok_or_else(|| format!("field {name:?} missing or not an unsigned integer"))
}

fn req_finite(rec: &Json, name: &str) -> Result<f64, String> {
    let v = rec
        .get(name)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("field {name:?} missing or not a number"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("field {name:?} is not finite"))
    }
}

fn req_str<'a>(rec: &'a Json, name: &str) -> Result<&'a str, String> {
    let s = rec
        .get(name)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("field {name:?} missing or not a string"))?;
    if s.is_empty() {
        return Err(format!("field {name:?} is empty"));
    }
    Ok(s)
}

fn opt_u64(rec: &Json, name: &str) -> Result<Option<u64>, String> {
    match rec.get(name) {
        None => Err(format!("field {name:?} missing")),
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {name:?} is neither null nor an unsigned integer")),
    }
}

fn check_score(score: &Json, makespan: u64) -> Result<bool, String> {
    let label = req_str(score, "label")?;
    let at = req_u64(score, "at")?;
    if at >= makespan {
        return Err(format!("score {label:?} at {at} is past the makespan {makespan}"));
    }
    let baseline = req_finite(score, "baseline_throughput")?;
    let min = req_finite(score, "min_throughput")?;
    let depth = req_finite(score, "regression_depth")?;
    if baseline < 0.0 || min < 0.0 {
        return Err(format!("score {label:?} has a negative throughput"));
    }
    if !(0.0..=1.0).contains(&depth) {
        return Err(format!("score {label:?} regression_depth {depth} outside [0, 1]"));
    }
    if baseline > 0.0 {
        let expected = (1.0 - min / baseline).max(0.0);
        if (depth - expected).abs() > 1e-9 {
            return Err(format!(
                "score {label:?} regression_depth {depth} inconsistent with \
                 baseline {baseline} / min {min} (expected {expected})"
            ));
        }
    }
    let reconverged_at = opt_u64(score, "reconverged_at")?;
    let ttr = opt_u64(score, "time_to_reconverge")?;
    if reconverged_at.is_some() != ttr.is_some() {
        return Err(format!(
            "score {label:?}: reconverged_at and time_to_reconverge must be null together"
        ));
    }
    if let (Some(end), Some(t)) = (reconverged_at, ttr) {
        if end < at || end - at != t {
            return Err(format!(
                "score {label:?}: time_to_reconverge {t} != reconverged_at {end} - at {at}"
            ));
        }
    }
    opt_u64(score, "pairs_stable_at")?;
    Ok(baseline > 0.0 && reconverged_at.is_some())
}

fn check_report(rec: &Json) -> Result<(String, usize), String> {
    let scenario = req_str(rec, "scenario")?.to_string();
    req_str(rec, "policy")?;
    req_u64(rec, "seed")?;
    let window = req_u64(rec, "window")?;
    if window == 0 {
        return Err("field \"window\" must be positive".into());
    }
    let makespan = req_u64(rec, "makespan")?;
    req_u64(rec, "commits")?;
    req_u64(rec, "trace_hash")?;
    let throughput = req_finite(rec, "throughput")?;
    if throughput < 0.0 {
        return Err("field \"throughput\" is negative".into());
    }
    req_finite(rec, "steady_state_delta")?;
    let recovered = match rec.get("recovered") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("field \"recovered\" missing or not a bool".into()),
    };
    let scores = rec
        .get("scores")
        .and_then(|s| s.as_array())
        .ok_or("field \"scores\" missing or not an array")?;
    let mut all_scored_recovered = true;
    for score in scores {
        let scoreable_and_reconverged =
            check_score(score, makespan).map_err(|e| format!("{scenario}: {e}"))?;
        let baseline = score.get("baseline_throughput").and_then(|v| v.as_f64());
        if baseline.is_some_and(|b| b > 0.0) && !scoreable_and_reconverged {
            all_scored_recovered = false;
        }
    }
    if recovered != all_scored_recovered {
        return Err(format!(
            "{scenario}: \"recovered\" = {recovered} disagrees with the scores"
        ));
    }
    Ok((scenario, scores.len()))
}

fn check_file(path: &str) -> Result<(), String> {
    let content =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
    let json = Json::parse(&content).map_err(|e| format!("{path}: not valid JSON: {e}"))?;
    let reports: Vec<&Json> = match &json {
        Json::Array(items) => items.iter().collect(),
        other => vec![other],
    };
    if reports.is_empty() {
        return Err(format!("{path}: no reports"));
    }
    let mut summaries = Vec::new();
    for rec in &reports {
        summaries.push(check_report(rec).map_err(|e| format!("{path}: {e}"))?);
    }
    println!("scenario_check: {path}: {} report(s) OK", reports.len());
    for (scenario, scores) in summaries {
        println!("  {scenario:<16} {scores} score(s)");
    }
    Ok(())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: scenario_check <reports.json>...");
        return ExitCode::FAILURE;
    }
    for path in &paths {
        if let Err(e) = check_file(path) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
