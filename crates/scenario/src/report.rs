//! Re-convergence scoring: how a scheduler reacts to disturbances.
//!
//! A [`RecoveryReport`] is computed purely from artefacts the run already
//! produces — the windowed lifecycle metrics
//! (`seer_runtime::WindowedMetrics`) and the inference trace stream — so
//! scoring adds nothing to the simulation and cannot perturb it. For each
//! (coalesced) disturbance in the spec, a [`RecoveryScore`] measures:
//!
//! * **baseline** — mean window throughput between the previous
//!   disturbance (or run start) and the disturbance;
//! * **regression depth** — `1 − min/baseline` over the windows before
//!   the next disturbance (0 = no dip);
//! * **time to re-converge** — cycles until a window's throughput first
//!   regains [`RECOVERY_FRACTION`] of the baseline;
//! * **pairs stabilization** — for schedulers emitting inference traces,
//!   the cycle of the first post-disturbance round from which the
//!   serialized pair set never changes again.
//!
//! The trailing partial window (whose span extends past the makespan)
//! under-reports throughput by construction and is excluded from scoring.

use std::collections::BTreeSet;

use seer_harness::{Json, ToJson};
use seer_runtime::{InferenceTrace, MetricsWindow, RunMetrics, WindowedMetrics};
use seer_sim::Cycles;

use crate::spec::ScenarioSpec;

/// Fraction of the pre-disturbance baseline throughput a window must
/// regain to count as re-converged.
pub const RECOVERY_FRACTION: f64 = 0.9;

/// Recovery measurements for one disturbance.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryScore {
    /// Disturbance label (`phase-1`, `wipe-stats`, `park-t2`, …).
    pub label: String,
    /// Cycle the disturbance fired at.
    pub at: Cycles,
    /// Mean window throughput (commits/cycle) before the disturbance.
    pub baseline_throughput: f64,
    /// Minimum window throughput before the next disturbance.
    pub min_throughput: f64,
    /// `max(0, 1 − min/baseline)`; 0 when the scheduler never dipped.
    pub regression_depth: f64,
    /// End of the first post-disturbance window whose throughput regained
    /// [`RECOVERY_FRACTION`] of the baseline, if any.
    pub reconverged_at: Option<Cycles>,
    /// `reconverged_at − at`.
    pub time_to_reconverge: Option<Cycles>,
    /// Cycle of the first post-disturbance inference round from which the
    /// serialized pair set stays fixed (`None` for schedulers without an
    /// inference stream, or when no round ran after the disturbance).
    pub pairs_stable_at: Option<Cycles>,
}

impl ToJson for RecoveryScore {
    fn to_json(&self) -> Json {
        Json::object([
            ("label", self.label.to_json()),
            ("at", self.at.to_json()),
            ("baseline_throughput", Json::Num(self.baseline_throughput)),
            ("min_throughput", Json::Num(self.min_throughput)),
            ("regression_depth", Json::Num(self.regression_depth)),
            ("reconverged_at", self.reconverged_at.to_json()),
            ("time_to_reconverge", self.time_to_reconverge.to_json()),
            ("pairs_stable_at", self.pairs_stable_at.to_json()),
        ])
    }
}

/// The scenario engine's verdict on one `(scenario, policy, seed)` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Scenario name.
    pub scenario: String,
    /// Scheduler policy label.
    pub policy: String,
    /// Harness seed.
    pub seed: u64,
    /// Scoring window width, in cycles.
    pub window: Cycles,
    /// Run makespan, in cycles.
    pub makespan: Cycles,
    /// Total commits.
    pub commits: u64,
    /// Whole-run throughput (commits per cycle).
    pub throughput: f64,
    /// The run's event-schedule digest (replay identity).
    pub trace_hash: u64,
    /// Relative steady-state change: mean post-last-disturbance window
    /// throughput over mean pre-first-disturbance throughput, minus one.
    pub steady_state_delta: f64,
    /// True when every scored disturbance (with a positive baseline)
    /// re-converged.
    pub recovered: bool,
    /// Per-disturbance scores, in time order.
    pub scores: Vec<RecoveryScore>,
}

impl RecoveryReport {
    /// Scores `metrics`/`windows`/`inference` against the spec's
    /// disturbance times.
    pub fn build(
        spec: &ScenarioSpec,
        policy: &str,
        seed: u64,
        metrics: &RunMetrics,
        windows: &WindowedMetrics,
        inference: &[InferenceTrace],
    ) -> Self {
        let disturbances = spec.disturbances();
        // Exclude the trailing partial window unless it is all we have.
        let scored: Vec<&MetricsWindow> = {
            let full: Vec<&MetricsWindow> = windows
                .windows()
                .iter()
                .filter(|w| w.to <= metrics.makespan)
                .collect();
            if full.is_empty() {
                windows.windows().iter().collect()
            } else {
                full
            }
        };
        // Pair-set per inference round, and the index from which the set
        // never changes again.
        let pair_sets: Vec<BTreeSet<(usize, usize)>> = inference
            .iter()
            .map(|round| {
                round
                    .rows
                    .iter()
                    .flat_map(|row| {
                        row.pairs
                            .iter()
                            .filter(|p| p.verdict.serialize())
                            .map(move |p| (row.x, p.y))
                    })
                    .collect()
            })
            .collect();
        let stable_from = match pair_sets.last() {
            None => 0,
            Some(last) => pair_sets
                .iter()
                .rposition(|s| s != last)
                .map(|i| i + 1)
                .unwrap_or(0),
        };

        let mean = |ws: &[&MetricsWindow]| -> f64 {
            if ws.is_empty() {
                0.0
            } else {
                ws.iter().map(|w| w.throughput()).sum::<f64>() / ws.len() as f64
            }
        };

        let mut scores = Vec::new();
        for (i, (at, label)) in disturbances.iter().enumerate() {
            if *at >= metrics.makespan {
                // The run finished before this disturbance fired (its
                // directive is still in the queue): nothing to score.
                continue;
            }
            let prev = if i == 0 { 0 } else { disturbances[i - 1].0 };
            let next = disturbances
                .get(i + 1)
                .map(|d| d.0)
                .unwrap_or(Cycles::MAX);
            let baseline_ws: Vec<&MetricsWindow> = scored
                .iter()
                .filter(|w| w.from >= prev && w.to <= *at)
                .copied()
                .collect();
            let baseline_ws = if baseline_ws.is_empty() {
                // Disturbance inside the first window after `prev`: fall
                // back to everything before it.
                scored.iter().filter(|w| w.to <= *at).copied().collect()
            } else {
                baseline_ws
            };
            let baseline = mean(&baseline_ws);
            let segment: Vec<&MetricsWindow> = scored
                .iter()
                .filter(|w| w.from >= *at && w.from < next)
                .copied()
                .collect();
            let min_throughput = segment
                .iter()
                .map(|w| w.throughput())
                .fold(f64::INFINITY, f64::min);
            let min_throughput = if min_throughput.is_finite() {
                min_throughput
            } else {
                baseline
            };
            let regression_depth = if baseline > 0.0 {
                (1.0 - min_throughput / baseline).max(0.0)
            } else {
                0.0
            };
            let reconverged_at = if baseline > 0.0 {
                scored
                    .iter()
                    .find(|w| {
                        w.from >= *at && w.throughput() >= RECOVERY_FRACTION * baseline
                    })
                    .map(|w| w.to)
            } else {
                None
            };
            // Rounds are chronological, so the first round that is both
            // at/after the disturbance and at/after the global
            // stabilization index is the stabilization point.
            let pairs_stable_at = inference
                .iter()
                .enumerate()
                .find(|(idx, round)| round.at >= *at && *idx >= stable_from)
                .map(|(_, round)| round.at);
            scores.push(RecoveryScore {
                label: label.clone(),
                at: *at,
                baseline_throughput: baseline,
                min_throughput,
                regression_depth,
                reconverged_at,
                time_to_reconverge: reconverged_at.map(|t| t.saturating_sub(*at)),
                pairs_stable_at,
            });
        }

        let steady_state_delta = if let (Some(first), Some(last)) =
            (disturbances.first(), disturbances.last())
        {
            let pre: Vec<&MetricsWindow> =
                scored.iter().filter(|w| w.to <= first.0).copied().collect();
            let post: Vec<&MetricsWindow> =
                scored.iter().filter(|w| w.from >= last.0).copied().collect();
            let (pre_mean, post_mean) = (mean(&pre), mean(&post));
            if pre_mean > 0.0 && !post.is_empty() {
                post_mean / pre_mean - 1.0
            } else {
                0.0
            }
        } else {
            0.0
        };

        let recovered = scores
            .iter()
            .filter(|s| s.baseline_throughput > 0.0)
            .all(|s| s.reconverged_at.is_some());

        RecoveryReport {
            scenario: spec.name.clone(),
            policy: policy.to_string(),
            seed,
            window: windows.width(),
            makespan: metrics.makespan,
            commits: metrics.commits,
            throughput: if metrics.makespan == 0 {
                0.0
            } else {
                metrics.commits as f64 / metrics.makespan as f64
            },
            trace_hash: metrics.trace_hash,
            steady_state_delta,
            recovered,
            scores,
        }
    }
}

impl ToJson for RecoveryReport {
    fn to_json(&self) -> Json {
        Json::object([
            ("scenario", self.scenario.to_json()),
            ("policy", self.policy.to_json()),
            ("seed", self.seed.to_json()),
            ("window", self.window.to_json()),
            ("makespan", self.makespan.to_json()),
            ("commits", self.commits.to_json()),
            ("throughput", Json::Num(self.throughput)),
            ("trace_hash", self.trace_hash.to_json()),
            ("steady_state_delta", Json::Num(self.steady_state_delta)),
            ("recovered", self.recovered.to_json()),
            ("scores", self.scores.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::LifecycleEvent;

    use crate::spec::{FaultKind, FaultSpec};
    use seer_stamp::Benchmark;

    /// Synthesizes a lifecycle stream with `per_window` commits in every
    /// window except the dip range, which gets `dip` commits.
    fn commits_stream(
        windows: u64,
        width: Cycles,
        per_window: u64,
        dip_range: std::ops::Range<u64>,
        dip: u64,
    ) -> Vec<LifecycleEvent> {
        let mut events = Vec::new();
        for w in 0..windows {
            let n = if dip_range.contains(&w) { dip } else { per_window };
            for k in 0..n {
                events.push(LifecycleEvent::HtmCommit {
                    at: w * width + (k * width / n.max(1)),
                    thread: 0,
                    block: 0,
                    attempts_used: 0,
                });
            }
        }
        events
    }

    fn spec_with_fault(at: Cycles) -> ScenarioSpec {
        let mut spec =
            ScenarioSpec::stationary("score-test", Benchmark::Ssca2, 2, 0.05, 1_000);
        spec.faults.push(FaultSpec {
            at,
            fault: FaultKind::WipeStats,
        });
        spec
    }

    fn metrics_for(events: &[LifecycleEvent], makespan: Cycles) -> RunMetrics {
        let mut m = RunMetrics::new(1, 0, 0);
        m.makespan = makespan;
        m.commits = events.len() as u64;
        m
    }

    #[test]
    fn dip_and_recovery_are_scored() {
        // 10 windows of width 1000; fault at 3000; windows 3..5 dip to 2
        // commits, others carry 10.
        let events = commits_stream(10, 1_000, 10, 3..5, 2);
        let metrics = metrics_for(&events, 10_000);
        let windows = WindowedMetrics::from_lifecycle(&events, 1_000, 10_000);
        let spec = spec_with_fault(3_000);
        let report = RecoveryReport::build(&spec, "test", 0, &metrics, &windows, &[]);
        assert_eq!(report.scores.len(), 1);
        let s = &report.scores[0];
        assert!((s.baseline_throughput - 0.01).abs() < 1e-12, "{s:?}");
        assert!((s.min_throughput - 0.002).abs() < 1e-12, "{s:?}");
        assert!((s.regression_depth - 0.8).abs() < 1e-9, "{s:?}");
        // First window at/after 3000 with throughput >= 0.9 * baseline is
        // window 5 ([5000, 6000)): reconverged at its end.
        assert_eq!(s.reconverged_at, Some(6_000));
        assert_eq!(s.time_to_reconverge, Some(3_000));
        assert!(report.recovered);
        assert!(s.pairs_stable_at.is_none(), "no inference stream");
    }

    #[test]
    fn no_recovery_is_reported_as_such() {
        // Throughput never regains the baseline after the fault.
        let events = commits_stream(10, 1_000, 10, 3..10, 2);
        let metrics = metrics_for(&events, 10_000);
        let windows = WindowedMetrics::from_lifecycle(&events, 1_000, 10_000);
        let spec = spec_with_fault(3_000);
        let report = RecoveryReport::build(&spec, "test", 0, &metrics, &windows, &[]);
        let s = &report.scores[0];
        assert_eq!(s.reconverged_at, None);
        assert!(!report.recovered);
        assert!(report.steady_state_delta < -0.5, "{}", report.steady_state_delta);
    }

    #[test]
    fn flat_throughput_means_no_regression() {
        let events = commits_stream(8, 1_000, 10, 0..0, 0);
        let metrics = metrics_for(&events, 8_000);
        let windows = WindowedMetrics::from_lifecycle(&events, 1_000, 8_000);
        let spec = spec_with_fault(4_000);
        let report = RecoveryReport::build(&spec, "test", 0, &metrics, &windows, &[]);
        let s = &report.scores[0];
        assert!(s.regression_depth < 1e-9);
        assert_eq!(s.reconverged_at, Some(5_000), "immediately re-converged");
        assert!(report.recovered);
        assert!(report.steady_state_delta.abs() < 1e-9);
    }

    #[test]
    fn report_json_has_the_stable_schema() {
        let events = commits_stream(4, 1_000, 5, 0..0, 0);
        let metrics = metrics_for(&events, 4_000);
        let windows = WindowedMetrics::from_lifecycle(&events, 1_000, 4_000);
        let spec = spec_with_fault(2_000);
        let report = RecoveryReport::build(&spec, "seer", 3, &metrics, &windows, &[]);
        let json = report.to_json();
        for key in [
            "scenario",
            "policy",
            "seed",
            "window",
            "makespan",
            "commits",
            "throughput",
            "trace_hash",
            "steady_state_delta",
            "recovered",
            "scores",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        let scores = json.get("scores").unwrap().as_array().unwrap();
        assert_eq!(scores.len(), 1);
        for key in [
            "label",
            "at",
            "baseline_throughput",
            "min_throughput",
            "regression_depth",
            "reconverged_at",
            "time_to_reconverge",
            "pairs_stable_at",
        ] {
            assert!(scores[0].get(key).is_some(), "missing score {key}");
        }
        // Round-trips through the parser (schema check style).
        let text = json.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), json);
    }
}
