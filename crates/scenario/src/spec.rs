//! Scenario scripts: pure-data descriptions of non-stationary runs.
//!
//! A [`ScenarioSpec`] is the declarative half of the scenario engine: a
//! named base workload plus three timed tracks — [`PhaseSpec`] (workload
//! regime changes), [`ChurnSpec`] (thread park/unpark), [`FaultSpec`]
//! (injected disturbances) — all stamped in *virtual cycles*. A spec
//! contains no behaviour: [`ScenarioSpec::compile`] lowers it to the
//! driver's [`TimedDirective`] script, which delivers every disturbance
//! through the discrete-event queue. No wall-clock time is consulted
//! anywhere, so a scenario run is a pure function of
//! `(spec, scheduler, seed)` and replays bit-identically.
//!
//! Specs round-trip through the harness's dependency-free [`Json`] tree
//! ([`ScenarioSpec::to_json`] / [`ScenarioSpec::from_json`]), which is how
//! `seer scenario run --spec file.json` loads custom scripts.

use seer_harness::{Json, ToJson};
use seer_runtime::{Directive, SchedFault, TimedDirective};
use seer_sim::{Cycles, ThreadId};
use seer_stamp::Benchmark;

/// Every benchmark a scenario can name, in `Benchmark` declaration order.
const ALL_BENCHMARKS: [Benchmark; 10] = [
    Benchmark::Genome,
    Benchmark::Intruder,
    Benchmark::KmeansHigh,
    Benchmark::KmeansLow,
    Benchmark::Ssca2,
    Benchmark::VacationHigh,
    Benchmark::VacationLow,
    Benchmark::Yada,
    Benchmark::HashmapLow,
    Benchmark::Labyrinth,
];

/// Parses a [`Benchmark::name`] string.
pub fn benchmark_from_name(name: &str) -> Option<Benchmark> {
    ALL_BENCHMARKS.into_iter().find(|b| b.name() == name)
}

/// One workload regime. Phase 0 starts at cycle 0; later phases take
/// effect when the driver pops their `Directive::Phase` event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpec {
    /// Virtual cycle at which the phase begins (phase 0 must use 0).
    pub at: Cycles,
    /// Benchmark mix for the phase; `None` keeps the spec's base
    /// benchmark.
    pub benchmark: Option<Benchmark>,
    /// Hot-set skew in `(0, 1]`: shared-line offsets are compressed by
    /// this factor, so values below 1 concentrate the accesses of every
    /// block on a shrinking hot set. 1.0 leaves traces untouched.
    pub skew: f64,
    /// Multiplier on per-transaction think time (> 0; 1.0 = unchanged).
    pub think_scale: f64,
}

impl PhaseSpec {
    /// The identity phase at cycle 0: base benchmark, no skew, no think
    /// scaling.
    pub fn stationary() -> Self {
        PhaseSpec {
            at: 0,
            benchmark: None,
            skew: 1.0,
            think_scale: 1.0,
        }
    }
}

/// One thread-churn event: park (descheduled, mid-run) or unpark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnSpec {
    /// Virtual cycle of the event.
    pub at: Cycles,
    /// The churned thread.
    pub thread: ThreadId,
    /// `true` parks the thread; `false` unparks it.
    pub park: bool,
}

/// An injected disturbance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Wipe the scheduler's learned statistics (stats loss).
    WipeStats,
    /// Drop the next `rounds` due inference rounds (stats staleness).
    DelayInference {
        /// Number of due rounds to drop.
        rounds: u64,
    },
    /// Overwrite the inference thresholds (perturbation; the scheduler's
    /// hill climber must re-baseline, see `HillClimber::nudge`).
    KickThresholds {
        /// New Th1.
        th1: f64,
        /// New Th2.
        th2: f64,
    },
    /// Stall the current lock holder (or the busiest eligible thread) for
    /// a fixed number of cycles while its locks stay held.
    StallLockHolder {
        /// Stall length in cycles.
        cycles: Cycles,
    },
    /// Shrink the HTM capacity budgets for a bounded burst, then restore
    /// the configured geometry.
    CapacityShrink {
        /// Clamp on set associativity (ways), if any.
        ways: Option<usize>,
        /// Clamp on the flat read-set line budget, if any.
        read_lines: Option<usize>,
        /// Cycles until the configured budgets are restored.
        restore_after: Cycles,
    },
}

impl FaultKind {
    /// Stable kebab-case label (JSON `"kind"` field and report labels).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::WipeStats => "wipe-stats",
            FaultKind::DelayInference { .. } => "delay-inference",
            FaultKind::KickThresholds { .. } => "kick-thresholds",
            FaultKind::StallLockHolder { .. } => "stall-lock-holder",
            FaultKind::CapacityShrink { .. } => "capacity-shrink",
        }
    }
}

/// One timed fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Virtual cycle at which the fault fires.
    pub at: Cycles,
    /// The disturbance.
    pub fault: FaultKind,
}

/// A complete scenario: base workload plus the three disturbance tracks.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (report key and CLI handle).
    pub name: String,
    /// Base benchmark (phase 0's mix unless overridden).
    pub benchmark: Benchmark,
    /// Simulated threads (1..=8 on the paper machine).
    pub threads: usize,
    /// Scale factor on the base benchmark's default transactions per
    /// thread; the resulting quota is the whole-run per-thread budget
    /// regardless of where phase boundaries fall.
    pub scale: f64,
    /// Width of the recovery-scoring windows, in cycles.
    pub window: Cycles,
    /// Workload regimes; `phases[0]` must start at cycle 0.
    pub phases: Vec<PhaseSpec>,
    /// Thread churn schedule.
    pub churn: Vec<ChurnSpec>,
    /// Fault injections.
    pub faults: Vec<FaultSpec>,
}

impl ScenarioSpec {
    /// A stationary single-phase scenario (the neutral starting point the
    /// built-in library and tests extend).
    pub fn stationary(
        name: impl Into<String>,
        benchmark: Benchmark,
        threads: usize,
        scale: f64,
        window: Cycles,
    ) -> Self {
        ScenarioSpec {
            name: name.into(),
            benchmark,
            threads,
            scale,
            window,
            phases: vec![PhaseSpec::stationary()],
            churn: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Checks every structural invariant a spec must satisfy before it can
    /// be compiled, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.threads == 0 || self.threads > 8 {
            return Err(format!(
                "threads must be 1..=8 on the paper machine, got {}",
                self.threads
            ));
        }
        if !(self.scale > 0.0 && self.scale.is_finite()) {
            return Err(format!("scale must be positive and finite, got {}", self.scale));
        }
        if self.window == 0 {
            return Err("window width must be positive".into());
        }
        if self.phases.is_empty() {
            return Err("a scenario needs at least one phase".into());
        }
        if self.phases[0].at != 0 {
            return Err(format!(
                "phase 0 must start at cycle 0, got {}",
                self.phases[0].at
            ));
        }
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 && p.at <= self.phases[i - 1].at {
                return Err(format!(
                    "phase {i} at cycle {} does not follow phase {} at cycle {}",
                    p.at,
                    i - 1,
                    self.phases[i - 1].at
                ));
            }
            if !(p.skew > 0.0 && p.skew <= 1.0) {
                return Err(format!("phase {i}: skew must be in (0, 1], got {}", p.skew));
            }
            if !(p.think_scale > 0.0 && p.think_scale.is_finite()) {
                return Err(format!(
                    "phase {i}: think_scale must be positive and finite, got {}",
                    p.think_scale
                ));
            }
        }
        // A thread parked and never unparked leaves the run unable to
        // finish (the driver refuses to drain the queue with live
        // threads), so the churn track must return every thread to the
        // unparked state.
        let mut parked = vec![false; self.threads];
        let mut order: Vec<&ChurnSpec> = self.churn.iter().collect();
        order.sort_by_key(|c| c.at);
        for (i, c) in self.churn.iter().enumerate() {
            if c.thread >= self.threads {
                return Err(format!(
                    "churn event {i}: thread {} out of range (threads = {})",
                    c.thread, self.threads
                ));
            }
        }
        for c in order {
            parked[c.thread] = c.park;
        }
        if let Some(t) = parked.iter().position(|&p| p) {
            return Err(format!(
                "thread {t} is parked by the churn schedule but never unparked"
            ));
        }
        for (i, f) in self.faults.iter().enumerate() {
            match f.fault {
                FaultKind::WipeStats => {}
                FaultKind::DelayInference { rounds } => {
                    if rounds == 0 {
                        return Err(format!("fault {i}: delay-inference needs rounds >= 1"));
                    }
                }
                FaultKind::KickThresholds { th1, th2 } => {
                    if !th1.is_finite() || !th2.is_finite() {
                        return Err(format!(
                            "fault {i}: kick-thresholds needs finite values, got ({th1}, {th2})"
                        ));
                    }
                }
                FaultKind::StallLockHolder { cycles } => {
                    if cycles == 0 {
                        return Err(format!("fault {i}: stall-lock-holder needs cycles >= 1"));
                    }
                }
                FaultKind::CapacityShrink {
                    ways,
                    read_lines,
                    restore_after,
                } => {
                    if ways.is_none() && read_lines.is_none() {
                        return Err(format!(
                            "fault {i}: capacity-shrink must clamp ways and/or read_lines"
                        ));
                    }
                    if ways == Some(0) || read_lines == Some(0) {
                        return Err(format!("fault {i}: capacity clamps must be >= 1"));
                    }
                    if restore_after == 0 {
                        return Err(format!("fault {i}: restore_after must be >= 1"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Lowers the spec to the driver's timed-directive script, sorted by
    /// firing time (stable, so same-time directives keep track order:
    /// phases, then churn, then faults).
    pub fn compile(&self) -> Vec<TimedDirective> {
        let td = |at, directive| TimedDirective { at, directive };
        let mut script = Vec::new();
        for (idx, p) in self.phases.iter().enumerate().skip(1) {
            script.push(td(p.at, Directive::Phase(idx)));
        }
        for c in &self.churn {
            let directive = if c.park {
                Directive::Park(c.thread)
            } else {
                Directive::Unpark(c.thread)
            };
            script.push(td(c.at, directive));
        }
        for f in &self.faults {
            match f.fault {
                FaultKind::WipeStats => {
                    script.push(td(f.at, Directive::Sched(SchedFault::WipeStats)));
                }
                FaultKind::DelayInference { rounds } => {
                    script.push(td(f.at, Directive::Sched(SchedFault::DelayInference { rounds })));
                }
                FaultKind::KickThresholds { th1, th2 } => {
                    script.push(td(f.at, Directive::Sched(SchedFault::KickThresholds { th1, th2 })));
                }
                FaultKind::StallLockHolder { cycles } => {
                    script.push(td(f.at, Directive::StallLockHolder { cycles }));
                }
                FaultKind::CapacityShrink {
                    ways,
                    read_lines,
                    restore_after,
                } => {
                    script.push(td(f.at, Directive::Capacity { ways, read_lines }));
                    script.push(td(
                        f.at + restore_after,
                        Directive::Capacity {
                            ways: None,
                            read_lines: None,
                        },
                    ));
                }
            }
        }
        script.sort_by_key(|t| t.at);
        script
    }

    /// The labelled disturbance times recovery is scored against: phase
    /// boundaries, faults, and park events, sorted by time and coalesced —
    /// events closer than one scoring window to the previous kept
    /// disturbance fold into it (a churn storm scores as one disturbance,
    /// not one per parked thread).
    pub fn disturbances(&self) -> Vec<(Cycles, String)> {
        let mut raw: Vec<(Cycles, String)> = Vec::new();
        for (idx, p) in self.phases.iter().enumerate().skip(1) {
            raw.push((p.at, format!("phase-{idx}")));
        }
        for c in &self.churn {
            if c.park {
                raw.push((c.at, format!("park-t{}", c.thread)));
            }
        }
        for f in &self.faults {
            raw.push((f.at, f.fault.label().to_string()));
        }
        raw.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let mut out: Vec<(Cycles, String)> = Vec::new();
        for (at, label) in raw {
            match out.last() {
                Some((kept, _)) if at < kept + self.window => {}
                _ => out.push((at, label)),
            }
        }
        out
    }

    /// Parses a spec from JSON text (see [`ScenarioSpec::from_json`]).
    pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
        let json = Json::parse(text)?;
        ScenarioSpec::from_json(&json)
    }

    /// Builds a spec from a parsed [`Json`] tree. The `phases`, `churn`
    /// and `faults` members may be omitted (a single stationary phase and
    /// empty tracks); everything else is required. The result is
    /// validated.
    pub fn from_json(json: &Json) -> Result<ScenarioSpec, String> {
        let name = req_str(json, "name")?.to_string();
        let bench_name = req_str(json, "benchmark")?;
        let benchmark = benchmark_from_name(bench_name)
            .ok_or_else(|| format!("unknown benchmark {bench_name:?}"))?;
        let threads = req_u64(json, "threads")? as usize;
        let scale = req_f64(json, "scale")?;
        let window = req_u64(json, "window")?;
        let mut phases = Vec::new();
        match json.get("phases") {
            None => phases.push(PhaseSpec::stationary()),
            Some(v) => {
                let items = v.as_array().ok_or("\"phases\" must be an array")?;
                for item in items {
                    let benchmark = match item.get("benchmark") {
                        None | Some(Json::Null) => None,
                        Some(b) => {
                            let n = b.as_str().ok_or("phase benchmark must be a string")?;
                            Some(
                                benchmark_from_name(n)
                                    .ok_or_else(|| format!("unknown benchmark {n:?}"))?,
                            )
                        }
                    };
                    phases.push(PhaseSpec {
                        at: req_u64(item, "at")?,
                        benchmark,
                        skew: opt_f64(item, "skew", 1.0)?,
                        think_scale: opt_f64(item, "think_scale", 1.0)?,
                    });
                }
            }
        }
        let mut churn = Vec::new();
        if let Some(v) = json.get("churn") {
            let items = v.as_array().ok_or("\"churn\" must be an array")?;
            for item in items {
                churn.push(ChurnSpec {
                    at: req_u64(item, "at")?,
                    thread: req_u64(item, "thread")? as ThreadId,
                    park: item
                        .get("park")
                        .and_then(Json::as_bool)
                        .ok_or("churn event needs a boolean \"park\"")?,
                });
            }
        }
        let mut faults = Vec::new();
        if let Some(v) = json.get("faults") {
            let items = v.as_array().ok_or("\"faults\" must be an array")?;
            for item in items {
                let at = req_u64(item, "at")?;
                let kind = req_str(item, "kind")?;
                let fault = match kind {
                    "wipe-stats" => FaultKind::WipeStats,
                    "delay-inference" => FaultKind::DelayInference {
                        rounds: req_u64(item, "rounds")?,
                    },
                    "kick-thresholds" => FaultKind::KickThresholds {
                        th1: req_f64(item, "th1")?,
                        th2: req_f64(item, "th2")?,
                    },
                    "stall-lock-holder" => FaultKind::StallLockHolder {
                        cycles: req_u64(item, "cycles")?,
                    },
                    "capacity-shrink" => FaultKind::CapacityShrink {
                        ways: opt_usize(item, "ways")?,
                        read_lines: opt_usize(item, "read_lines")?,
                        restore_after: req_u64(item, "restore_after")?,
                    },
                    other => return Err(format!("unknown fault kind {other:?}")),
                };
                faults.push(FaultSpec { at, fault });
            }
        }
        let spec = ScenarioSpec {
            name,
            benchmark,
            threads,
            scale,
            window,
            phases,
            churn,
            faults,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes the spec; [`ScenarioSpec::from_json`] round-trips it.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("name", self.name.to_json()),
            ("benchmark", self.benchmark.name().to_json()),
            ("threads", self.threads.to_json()),
            ("scale", Json::Num(self.scale)),
            ("window", self.window.to_json()),
            (
                "phases",
                Json::Array(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("at", p.at.to_json()),
                                (
                                    "benchmark",
                                    match p.benchmark {
                                        Some(b) => b.name().to_json(),
                                        None => Json::Null,
                                    },
                                ),
                                ("skew", Json::Num(p.skew)),
                                ("think_scale", Json::Num(p.think_scale)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "churn",
                Json::Array(
                    self.churn
                        .iter()
                        .map(|c| {
                            Json::object([
                                ("at", c.at.to_json()),
                                ("thread", c.thread.to_json()),
                                ("park", c.park.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "faults",
                Json::Array(
                    self.faults
                        .iter()
                        .map(|f| {
                            let mut fields = vec![
                                ("at".to_string(), f.at.to_json()),
                                ("kind".to_string(), f.fault.label().to_json()),
                            ];
                            match f.fault {
                                FaultKind::WipeStats => {}
                                FaultKind::DelayInference { rounds } => {
                                    fields.push(("rounds".into(), rounds.to_json()));
                                }
                                FaultKind::KickThresholds { th1, th2 } => {
                                    fields.push(("th1".into(), Json::Num(th1)));
                                    fields.push(("th2".into(), Json::Num(th2)));
                                }
                                FaultKind::StallLockHolder { cycles } => {
                                    fields.push(("cycles".into(), cycles.to_json()));
                                }
                                FaultKind::CapacityShrink {
                                    ways,
                                    read_lines,
                                    restore_after,
                                } => {
                                    fields.push(("ways".into(), ways.to_json()));
                                    fields.push(("read_lines".into(), read_lines.to_json()));
                                    fields.push(("restore_after".into(), restore_after.to_json()));
                                }
                            }
                            Json::Object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn req_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string {key:?}"))
}

fn req_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer {key:?}"))
}

fn req_f64(json: &Json, key: &str) -> Result<f64, String> {
    json.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric {key:?}"))
}

fn opt_f64(json: &Json, key: &str, default: f64) -> Result<f64, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| format!("non-numeric {key:?}")),
    }
}

fn opt_usize(json: &Json, key: &str) -> Result<Option<usize>, String> {
    match json.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|u| Some(u as usize))
            .ok_or_else(|| format!("non-integer {key:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioSpec {
        let mut spec =
            ScenarioSpec::stationary("sample", Benchmark::KmeansHigh, 4, 0.5, 100_000);
        spec.phases.push(PhaseSpec {
            at: 300_000,
            benchmark: Some(Benchmark::VacationHigh),
            skew: 0.5,
            think_scale: 2.0,
        });
        spec.churn.push(ChurnSpec {
            at: 150_000,
            thread: 1,
            park: true,
        });
        spec.churn.push(ChurnSpec {
            at: 250_000,
            thread: 1,
            park: false,
        });
        spec.faults.push(FaultSpec {
            at: 400_000,
            fault: FaultKind::CapacityShrink {
                ways: Some(1),
                read_lines: Some(8),
                restore_after: 50_000,
            },
        });
        spec.faults.push(FaultSpec {
            at: 200_000,
            fault: FaultKind::KickThresholds { th1: 0.9, th2: 0.2 },
        });
        spec
    }

    #[test]
    fn sample_spec_validates_and_compiles_sorted() {
        let spec = sample();
        spec.validate().expect("sample must validate");
        let script = spec.compile();
        assert_eq!(script.len(), 6); // phase + 2 churn + kick + shrink + restore
        for pair in script.windows(2) {
            assert!(pair[0].at <= pair[1].at, "script must be time-sorted");
        }
        assert_eq!(
            script.last().unwrap().directive,
            Directive::Capacity {
                ways: None,
                read_lines: None
            },
            "capacity shrink must compile a restoring directive"
        );
    }

    #[test]
    fn json_round_trip_is_identity() {
        let spec = sample();
        let text = spec.to_json().to_string_pretty();
        let back = ScenarioSpec::parse(&text).expect("round-trip parse");
        assert_eq!(back, spec);
        // Compact form too (the JSONL-safe encoding).
        let back2 = ScenarioSpec::parse(&spec.to_json().to_string_compact()).unwrap();
        assert_eq!(back2, spec);
    }

    #[test]
    fn validation_rejects_structural_errors() {
        let mut s = sample();
        s.phases[0].at = 10;
        assert!(s.validate().unwrap_err().contains("phase 0"));

        let mut s = sample();
        s.phases[1].at = 0;
        assert!(s.validate().unwrap_err().contains("does not follow"));

        let mut s = sample();
        s.churn.pop(); // drop the unpark: thread 1 stays parked
        assert!(s.validate().unwrap_err().contains("never unparked"));

        let mut s = sample();
        s.churn[0].thread = 9;
        assert!(s.validate().unwrap_err().contains("out of range"));

        let mut s = sample();
        s.faults[0].fault = FaultKind::CapacityShrink {
            ways: None,
            read_lines: None,
            restore_after: 10,
        };
        assert!(s.validate().unwrap_err().contains("capacity-shrink"));

        let mut s = sample();
        s.window = 0;
        assert!(s.validate().is_err());

        let mut s = sample();
        s.scale = 0.0;
        assert!(s.validate().is_err());

        let mut s = sample();
        s.phases[1].skew = 0.0;
        assert!(s.validate().unwrap_err().contains("skew"));
    }

    #[test]
    fn from_json_rejects_unknown_names() {
        let err = ScenarioSpec::parse(
            r#"{"name":"x","benchmark":"nope","threads":2,"scale":1.0,"window":1000}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown benchmark"), "{err}");
        let err = ScenarioSpec::parse(
            r#"{"name":"x","benchmark":"ssca2","threads":2,"scale":1.0,"window":1000,
                "faults":[{"at":5,"kind":"meteor-strike"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");
    }

    #[test]
    fn minimal_json_defaults_to_stationary() {
        let spec = ScenarioSpec::parse(
            r#"{"name":"mini","benchmark":"ssca2","threads":2,"scale":1.0,"window":1000}"#,
        )
        .unwrap();
        assert_eq!(spec.phases, vec![PhaseSpec::stationary()]);
        assert!(spec.churn.is_empty());
        assert!(spec.faults.is_empty());
        assert!(spec.compile().is_empty(), "stationary specs compile to no script");
    }

    #[test]
    fn disturbances_coalesce_within_one_window() {
        let mut spec = ScenarioSpec::stationary("d", Benchmark::Ssca2, 4, 1.0, 100_000);
        for (i, at) in [(1usize, 200_000u64), (2, 220_000), (3, 240_000)] {
            spec.churn.push(ChurnSpec {
                at,
                thread: i,
                park: true,
            });
            spec.churn.push(ChurnSpec {
                at: at + 400_000,
                thread: i,
                park: false,
            });
        }
        spec.faults.push(FaultSpec {
            at: 900_000,
            fault: FaultKind::WipeStats,
        });
        let d = spec.disturbances();
        assert_eq!(d.len(), 2, "storm coalesces into one disturbance: {d:?}");
        assert_eq!(d[0].0, 200_000);
        assert_eq!(d[1].1, "wipe-stats");
    }
}
