//! The one front door for running simulations: [`RunRequest`].
//!
//! The workspace used to grow a new `run_*` free function every time an
//! experiment needed one more knob (`run_once`, `run_once_traced`,
//! `run_scenario`, `run_scenario_traced`, `run_scenario_with`). This
//! module collapses them into a single builder with two shapes:
//!
//! ```no_run
//! use seer_scenario::RunRequest;
//! use seer_harness::{Cell, PolicyKind};
//! use seer_stamp::Benchmark;
//!
//! // A harness cell — one (benchmark, policy, threads, seed, scale) run.
//! let metrics = RunRequest::cell(Cell {
//!     benchmark: Benchmark::Ssca2,
//!     policy: PolicyKind::Seer,
//!     threads: 4,
//! })
//! .scale(0.08)
//! .seed(1)
//! .run();
//!
//! // A scenario — one (spec, policy, seed) run with a recovery report.
//! let spec = seer_scenario::library::builtin("phase-flip").unwrap();
//! let outcome = RunRequest::scenario(&spec).policy(PolicyKind::Rtm).run();
//! # let _ = (metrics, outcome);
//! ```
//!
//! Both builders bottom out in the two execution primitives
//! (`seer_harness::execute_cell`, [`crate::runner::execute_scenario`]);
//! the builder adds nothing to the schedule, so traced, untraced, and
//! store-warmed runs of the same coordinates are bit-identical.

use seer_harness::{execute_cell, Cell, PolicyKind};
use seer_runtime::{MemoryTraceSink, RunMetrics, Scheduler, TraceSink, Workload};

use crate::runner::{execute_scenario, ScenarioOutcome};
use crate::spec::ScenarioSpec;
use crate::workload::ScenarioWorkload;

/// Entry point for every simulation run in the workspace.
///
/// `RunRequest` itself is never instantiated; its associated functions
/// hand out the two builder shapes: [`RunRequest::cell`] for harness
/// cells and [`RunRequest::scenario`] for scenario runs.
#[derive(Debug)]
pub struct RunRequest;

impl RunRequest {
    /// A harness-cell run: `seed` 0, `scale` 1.0, untraced by default.
    pub fn cell(cell: Cell) -> CellRun<'static> {
        CellRun {
            cell,
            seed: 0,
            scale: 1.0,
            sink: None,
        }
    }

    /// A scenario run: Seer policy, seed 0, untraced by default.
    pub fn scenario(spec: &ScenarioSpec) -> ScenarioRun<'_> {
        ScenarioRun {
            spec,
            driver: ScenarioDriver::Policy(PolicyKind::Seer),
            seed: 0,
            sink: None,
        }
    }
}

/// Builder for one harness-cell run (see [`RunRequest::cell`]).
pub struct CellRun<'r> {
    cell: Cell,
    seed: u64,
    scale: f64,
    sink: Option<&'r mut dyn TraceSink>,
}

impl<'r> CellRun<'r> {
    /// Harness seed (derives the simulator seed via `sim_seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Workload scale factor (1.0 = the paper's full-size inputs).
    pub fn scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Streams lifecycle/inference events into `sink`. Per the
    /// sink-not-flag discipline this never changes the schedule.
    pub fn traced<'s>(self, sink: &'s mut dyn TraceSink) -> CellRun<'s> {
        CellRun {
            cell: self.cell,
            seed: self.seed,
            scale: self.scale,
            sink: Some(sink),
        }
    }

    /// Runs the cell to completion.
    ///
    /// # Panics
    /// If the run trips the driver's event safety valve (`truncated`).
    pub fn run(self) -> RunMetrics {
        execute_cell(self.cell, self.seed, self.scale, self.sink)
    }
}

impl std::fmt::Debug for CellRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CellRun")
            .field("cell", &self.cell)
            .field("seed", &self.seed)
            .field("scale", &self.scale)
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

enum ScenarioDriver<'r> {
    Policy(PolicyKind),
    Scheduler {
        sched: &'r mut dyn Scheduler,
        label: String,
    },
}

/// Builder for one scenario run (see [`RunRequest::scenario`]).
pub struct ScenarioRun<'r> {
    spec: &'r ScenarioSpec,
    driver: ScenarioDriver<'r>,
    seed: u64,
    sink: Option<&'r mut MemoryTraceSink>,
}

impl<'r> ScenarioRun<'r> {
    /// Runs under `policy`'s scheduler (default: Seer).
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.driver = ScenarioDriver::Policy(policy);
        self
    }

    /// Runs under an explicit scheduler instance, reported as `label`.
    /// Overrides any [`policy`](Self::policy) choice.
    pub fn scheduler(mut self, sched: &'r mut dyn Scheduler, label: &str) -> Self {
        self.driver = ScenarioDriver::Scheduler {
            sched,
            label: label.to_string(),
        };
        self
    }

    /// Harness seed (derives the simulator seed via `sim_seed`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Collects the run's lifecycle and inference streams into `sink`
    /// instead of a throwaway internal one. The outcome is bit-identical
    /// either way.
    pub fn traced(mut self, sink: &'r mut MemoryTraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Runs the scenario to completion and scores its recovery.
    ///
    /// # Panics
    /// If the spec fails validation, the run trips the event safety
    /// valve, or windowed conservation laws are violated.
    pub fn run(self) -> ScenarioOutcome {
        match self.driver {
            ScenarioDriver::Scheduler { sched, label } => {
                execute_scenario(self.spec, sched, &label, self.seed, self.sink)
            }
            ScenarioDriver::Policy(policy) => {
                let blocks = ScenarioWorkload::new(self.spec).num_blocks();
                let mut sched = policy.build(self.spec.threads, blocks);
                execute_scenario(self.spec, sched.as_mut(), policy.name(), self.seed, self.sink)
            }
        }
    }
}

impl std::fmt::Debug for ScenarioRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let driver = match &self.driver {
            ScenarioDriver::Policy(p) => p.name(),
            ScenarioDriver::Scheduler { label, .. } => label,
        };
        f.debug_struct("ScenarioRun")
            .field("scenario", &self.spec.name)
            .field("driver", &driver)
            .field("seed", &self.seed)
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn traced_and_untraced_cell_runs_are_bit_identical() {
        let cell = Cell {
            benchmark: seer_stamp::Benchmark::KmeansLow,
            policy: PolicyKind::Seer,
            threads: 4,
        };
        let untraced = RunRequest::cell(cell).scale(0.1).run();
        let mut sink = MemoryTraceSink::new();
        let traced = RunRequest::cell(cell).scale(0.1).traced(&mut sink).run();
        assert_eq!(untraced.trace_hash, traced.trace_hash);
        assert!(!sink.lifecycle.is_empty(), "the sink actually collected");
    }

    #[test]
    fn scenario_default_policy_is_seer() {
        let spec = library::builtin("phase-flip").unwrap();
        let implicit = RunRequest::scenario(&spec).run();
        let explicit = RunRequest::scenario(&spec).policy(PolicyKind::Seer).run();
        assert_eq!(implicit.report.policy, "seer");
        assert_eq!(implicit.metrics.trace_hash, explicit.metrics.trace_hash);
    }

    #[test]
    fn explicit_scheduler_matches_policy_built_one() {
        let spec = library::builtin("churn-storm").unwrap();
        let by_policy = RunRequest::scenario(&spec).policy(PolicyKind::Rtm).run();
        let blocks = ScenarioWorkload::new(&spec).num_blocks();
        let mut sched = PolicyKind::Rtm.build(spec.threads, blocks);
        let by_instance = RunRequest::scenario(&spec)
            .scheduler(sched.as_mut(), "rtm")
            .run();
        assert_eq!(by_policy.metrics.trace_hash, by_instance.metrics.trace_hash);
        assert_eq!(by_policy.report, by_instance.report);
    }
}
