//! The parallel, memoizing, store-backed scenario executor.
//!
//! A thin instantiation of the workspace-generic
//! [`Executor`](seer_store::Executor) (DESIGN.md §9/§13) at scenario
//! granularity: work items are `(scenario, policy, seed)` coordinates,
//! deduplicated at plan-build time, memoized for the executor's lifetime,
//! persisted to an attached [`Store`], and supervised (retries, deadline,
//! panic isolation) exactly like harness cells. Every scenario run is an
//! independent deterministic simulation, so parallel and store-warmed
//! execution are bit-identical to a serial cold run — the conformance
//! suite's scenario fixtures pin exactly that.

use std::sync::Arc;

use seer_harness::PolicyKind;
use seer_store::{ExecReport, Executor, RemoteResolver, Store, SupervisorConfig};

use crate::library;
use crate::request::RunRequest;
use crate::runner::ScenarioOutcome;

/// The memoization key: every coordinate a scenario outcome depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    /// Built-in scenario name (resolved through [`library::builtin`]).
    pub scenario: String,
    /// Scheduler policy.
    pub policy: PolicyKind,
    /// Harness seed.
    pub seed: u64,
}

/// A deduplicated set of scenario work items.
#[derive(Debug, Default, Clone)]
pub struct ScenarioPlan {
    inner: seer_store::Plan<ScenarioKey>,
}

impl ScenarioPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one work item; returns `true` if it was new.
    pub fn add(&mut self, scenario: &str, policy: PolicyKind, seed: u64) -> bool {
        self.inner.add(ScenarioKey {
            scenario: scenario.to_string(),
            policy,
            seed,
        })
    }

    /// Adds the full `scenarios × policies × seeds` grid.
    pub fn add_grid(&mut self, scenarios: &[&str], policies: &[PolicyKind], seeds: u64) {
        for &scenario in scenarios {
            for &policy in policies {
                for seed in 0..seeds {
                    self.add(scenario, policy, seed);
                }
            }
        }
    }

    /// Number of unique work items.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the plan holds no items.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// The unique items, in insertion order.
    pub fn items(&self) -> &[ScenarioKey] {
        self.inner.items()
    }

    /// The underlying generic plan.
    pub fn as_generic(&self) -> &seer_store::Plan<ScenarioKey> {
        &self.inner
    }
}

/// Parallel, memoizing executor over the built-in scenario library.
#[derive(Debug)]
pub struct ScenarioExecutor {
    inner: Executor<ScenarioKey, ScenarioOutcome>,
}

impl ScenarioExecutor {
    /// An executor fanning uncached work out across `jobs` OS threads,
    /// supervised per the `SEER_RETRIES`/`SEER_CELL_TIMEOUT_MS`
    /// environment.
    pub fn new(jobs: usize) -> Self {
        Self::with_options(jobs, None, SupervisorConfig::from_env())
    }

    /// Like [`new`](Self::new), but warm-started from (and persisting
    /// into) `store`.
    pub fn with_store(jobs: usize, store: Store) -> Self {
        Self::with_options(jobs, Some(store), SupervisorConfig::from_env())
    }

    /// Full-control constructor: explicit store attachment and
    /// supervision policy.
    pub fn with_options(
        jobs: usize,
        store: Option<Store>,
        supervisor: SupervisorConfig,
    ) -> Self {
        let mut inner = Executor::new(jobs, |key: ScenarioKey| {
            let spec = library::builtin(&key.scenario)
                .unwrap_or_else(|| panic!("unknown scenario {:?}", key.scenario));
            RunRequest::scenario(&spec)
                .policy(key.policy)
                .seed(key.seed)
                .run()
        })
        .with_supervisor(supervisor);
        if let Some(store) = store {
            inner = inner.with_store(store);
        }
        Self { inner }
    }

    /// Attaches a remote resolver (e.g. `seer-remote`'s worker pool):
    /// planned items that miss the memo cache and the disk store are
    /// offered to `remote` before running locally. Remote results
    /// persist to the attached store exactly like local ones.
    pub fn with_remote(
        mut self,
        remote: Arc<dyn RemoteResolver<ScenarioKey, ScenarioOutcome>>,
    ) -> Self {
        self.inner = self.inner.with_remote(remote);
        self
    }

    /// Runs every not-yet-cached item of `plan`, reporting coverage.
    ///
    /// Unknown scenario names, panicking runs, and deadline overruns
    /// degrade into [`FailedItem`](seer_store::FailedItem)s in the
    /// report rather than aborting the process.
    pub fn execute(&self, plan: &ScenarioPlan) -> ExecReport<ScenarioKey> {
        self.inner.execute(plan.as_generic())
    }

    /// The outcome of one work item, running it (unsupervised) on a
    /// cache miss.
    ///
    /// # Panics
    /// If the item names a scenario the library does not contain (the
    /// CLI validates names before building plans).
    pub fn outcome(&self, scenario: &str, policy: PolicyKind, seed: u64) -> ScenarioOutcome {
        self.inner.get(ScenarioKey {
            scenario: scenario.to_string(),
            policy,
            seed,
        })
    }

    /// The memoized outcome of one item, without computing anything: the
    /// non-panicking read used to assemble partial reports around failed
    /// items.
    pub fn cached(&self, scenario: &str, policy: PolicyKind, seed: u64) -> Option<ScenarioOutcome> {
        self.inner.cached(&ScenarioKey {
            scenario: scenario.to_string(),
            policy,
            seed,
        })
    }

    /// The attached result store, if any.
    pub fn store(&self) -> Option<&Store> {
        self.inner.store()
    }

    /// Memo-cache reads served without touching disk or simulating.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Scenario simulations actually performed.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Results loaded from the attached store instead of simulated.
    pub fn disk_hits(&self) -> u64 {
        self.inner.disk_hits()
    }

    /// Results computed by remote workers instead of locally.
    pub fn remote_hits(&self) -> u64 {
        self.inner.remote_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_deduplicates() {
        let mut plan = ScenarioPlan::new();
        assert!(plan.is_empty());
        assert!(plan.add("stats-amnesia", PolicyKind::Seer, 0));
        assert!(!plan.add("stats-amnesia", PolicyKind::Seer, 0));
        plan.add_grid(&["stats-amnesia", "churn-storm"], &[PolicyKind::Seer], 2);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn executor_memoizes_and_parallel_equals_serial() {
        let mut plan = ScenarioPlan::new();
        plan.add_grid(&["churn-storm"], &[PolicyKind::Rtm, PolicyKind::Seer], 1);
        let serial = ScenarioExecutor::new(1);
        let report = serial.execute(&plan);
        assert!(report.complete(), "no failures expected: {report:?}");
        assert_eq!(serial.misses(), 2);
        serial.execute(&plan);
        assert_eq!(serial.misses(), 2, "re-execution hits the cache");
        assert_eq!(serial.hits(), 2);
        let parallel = ScenarioExecutor::new(4);
        parallel.execute(&plan);
        for key in plan.items() {
            let a = serial.outcome(&key.scenario, key.policy, key.seed);
            let b = parallel.outcome(&key.scenario, key.policy, key.seed);
            assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash, "{key:?}");
            assert_eq!(a.report, b.report, "{key:?}");
        }
    }

    #[test]
    fn unknown_scenario_degrades_into_a_failed_item() {
        let mut plan = ScenarioPlan::new();
        plan.add("no-such-scenario", PolicyKind::Rtm, 0);
        let exec =
            ScenarioExecutor::with_options(1, None, SupervisorConfig::fail_fast());
        let report = exec.execute(&plan);
        assert!(!report.complete());
        assert_eq!(report.failed.len(), 1);
        assert_eq!(report.failed[0].key.scenario, "no-such-scenario");
        assert_eq!(exec.misses(), 0, "failed runs are not counted as computed");
    }
}
