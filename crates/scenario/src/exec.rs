//! The parallel, memoizing scenario executor.
//!
//! Mirrors the harness's `Plan`/`CellExecutor` pattern (DESIGN.md §9) at
//! scenario granularity: work items are `(scenario, policy, seed)`
//! coordinates, deduplicated at plan-build time, memoized for the
//! executor's lifetime, and fanned out over the harness's `parallel_map`.
//! Every scenario run is an independent deterministic simulation, so
//! parallel execution is bit-identical to serial — the conformance suite's
//! scenario fixtures pin exactly that.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use seer_harness::{parallel_map, PolicyKind};

use crate::library;
use crate::runner::{run_scenario, ScenarioOutcome};
use crate::spec::ScenarioSpec;

/// The memoization key: every coordinate a scenario outcome depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioKey {
    /// Built-in scenario name (resolved through [`library::builtin`]).
    pub scenario: String,
    /// Scheduler policy.
    pub policy: PolicyKind,
    /// Harness seed.
    pub seed: u64,
}

/// A deduplicated set of scenario work items.
#[derive(Debug, Default, Clone)]
pub struct ScenarioPlan {
    items: Vec<ScenarioKey>,
    seen: HashSet<ScenarioKey>,
}

impl ScenarioPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one work item; returns `true` if it was new.
    pub fn add(&mut self, scenario: &str, policy: PolicyKind, seed: u64) -> bool {
        let key = ScenarioKey {
            scenario: scenario.to_string(),
            policy,
            seed,
        };
        let fresh = self.seen.insert(key.clone());
        if fresh {
            self.items.push(key);
        }
        fresh
    }

    /// Adds the full `scenarios × policies × seeds` grid.
    pub fn add_grid(&mut self, scenarios: &[&str], policies: &[PolicyKind], seeds: u64) {
        for &scenario in scenarios {
            for &policy in policies {
                for seed in 0..seeds {
                    self.add(scenario, policy, seed);
                }
            }
        }
    }

    /// Number of unique work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the plan holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The unique items, in insertion order.
    pub fn items(&self) -> &[ScenarioKey] {
        &self.items
    }
}

/// Parallel, memoizing executor over the built-in scenario library.
pub struct ScenarioExecutor {
    jobs: usize,
    cache: Mutex<HashMap<ScenarioKey, ScenarioOutcome>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScenarioExecutor {
    /// An executor fanning uncached work out across `jobs` OS threads.
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: jobs.max(1),
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Runs every not-yet-cached item of `plan`.
    ///
    /// # Panics
    /// If an item names a scenario the library does not contain (the CLI
    /// validates names before building plans).
    pub fn execute(&self, plan: &ScenarioPlan) {
        let todo: Vec<ScenarioKey> = {
            let cache = self.cache.lock().expect("scenario cache poisoned");
            plan.items()
                .iter()
                .filter(|key| !cache.contains_key(key))
                .cloned()
                .collect()
        };
        self.hits
            .fetch_add((plan.len() - todo.len()) as u64, Ordering::Relaxed);
        if todo.is_empty() {
            return;
        }
        self.misses.fetch_add(todo.len() as u64, Ordering::Relaxed);
        let specs: Vec<(ScenarioKey, ScenarioSpec)> = todo
            .into_iter()
            .map(|key| {
                let spec = library::builtin(&key.scenario)
                    .unwrap_or_else(|| panic!("unknown scenario {:?}", key.scenario));
                (key, spec)
            })
            .collect();
        let results = parallel_map(&specs, self.jobs, |(key, spec)| {
            run_scenario(spec, key.policy, key.seed)
        });
        let mut cache = self.cache.lock().expect("scenario cache poisoned");
        for ((key, _), outcome) in specs.into_iter().zip(results) {
            cache.insert(key, outcome);
        }
    }

    /// The outcome of one work item, running it on a cache miss.
    pub fn outcome(&self, scenario: &str, policy: PolicyKind, seed: u64) -> ScenarioOutcome {
        let key = ScenarioKey {
            scenario: scenario.to_string(),
            policy,
            seed,
        };
        if let Some(hit) = self
            .cache
            .lock()
            .expect("scenario cache poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let spec = library::builtin(scenario)
            .unwrap_or_else(|| panic!("unknown scenario {scenario:?}"));
        let outcome = run_scenario(&spec, policy, seed);
        self.cache
            .lock()
            .expect("scenario cache poisoned")
            .insert(key, outcome.clone());
        outcome
    }

    /// Cache reads served without simulating.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Scenario simulations actually performed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for ScenarioExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioExecutor")
            .field("jobs", &self.jobs)
            .field("cached", &self.cache.lock().map(|c| c.len()).unwrap_or(0))
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_deduplicates() {
        let mut plan = ScenarioPlan::new();
        assert!(plan.is_empty());
        assert!(plan.add("stats-amnesia", PolicyKind::Seer, 0));
        assert!(!plan.add("stats-amnesia", PolicyKind::Seer, 0));
        plan.add_grid(&["stats-amnesia", "churn-storm"], &[PolicyKind::Seer], 2);
        assert_eq!(plan.len(), 4);
    }

    #[test]
    fn executor_memoizes_and_parallel_equals_serial() {
        let mut plan = ScenarioPlan::new();
        plan.add_grid(&["churn-storm"], &[PolicyKind::Rtm, PolicyKind::Seer], 1);
        let serial = ScenarioExecutor::new(1);
        serial.execute(&plan);
        assert_eq!(serial.misses(), 2);
        serial.execute(&plan);
        assert_eq!(serial.misses(), 2, "re-execution hits the cache");
        assert_eq!(serial.hits(), 2);
        let parallel = ScenarioExecutor::new(4);
        parallel.execute(&plan);
        for key in plan.items() {
            let a = serial.outcome(&key.scenario, key.policy, key.seed);
            let b = parallel.outcome(&key.scenario, key.policy, key.seed);
            assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash, "{key:?}");
            assert_eq!(a.report, b.report, "{key:?}");
        }
    }
}
