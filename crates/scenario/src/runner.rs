//! Scenario execution: spec → driver run → recovery report.
//!
//! A scenario run is the ordinary traced harness run plus a compiled
//! directive script: the workload is a [`ScenarioWorkload`], the driver
//! config is the paper machine with `cfg.script = spec.compile()`, and the
//! seed goes through the harness's `sim_seed` derivation like every other
//! simulation in the workspace. Tracing is always collected through a
//! `MemoryTraceSink` — per the sink-not-flag discipline this cannot change
//! the event schedule, so the reported `trace_hash` is identical to an
//! untraced run of the same coordinates.
//!
//! [`execute_scenario`] is the one primitive (the scenario counterpart of
//! the harness's `execute_cell`); the public entry point is the
//! [`RunRequest`](crate::request::RunRequest) builder.

use seer_harness::sim_seed;
use seer_runtime::{
    run_traced, DriverConfig, MemoryTraceSink, RunMetrics, Scheduler, WindowedMetrics,
};

use crate::report::RecoveryReport;
use crate::spec::ScenarioSpec;
use crate::workload::ScenarioWorkload;

/// Everything one scenario run produces.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Whole-run aggregate metrics (including `trace_hash`).
    pub metrics: RunMetrics,
    /// The windowed slice of the run the report was scored on.
    pub windows: WindowedMetrics,
    /// The recovery verdict.
    pub report: RecoveryReport,
}

/// The one scenario-execution primitive: runs `spec` under an explicit
/// scheduler, labelled `policy_label` in the report. With a sink, the
/// run's lifecycle and inference streams remain available to the caller
/// afterwards; per the sink-not-flag discipline the outcome is
/// bit-identical either way.
///
/// This is the mechanism under `RunRequest::scenario` (the workspace's
/// public entry-point builder); the executor's run function calls it
/// directly.
///
/// # Panics
/// If the spec fails [`ScenarioSpec::validate`], the run trips the event
/// safety valve, or the windowed conservation laws are violated. Under a
/// supervised executor those panics are caught and reported as a failed
/// item, not a process abort.
pub fn execute_scenario(
    spec: &ScenarioSpec,
    sched: &mut dyn Scheduler,
    policy_label: &str,
    seed: u64,
    sink: Option<&mut MemoryTraceSink>,
) -> ScenarioOutcome {
    let mut local = MemoryTraceSink::new();
    let sink = sink.unwrap_or(&mut local);
    if let Err(e) = spec.validate() {
        panic!("invalid scenario {:?}: {e}", spec.name);
    }
    let mut workload = ScenarioWorkload::new(spec);
    let mut cfg = DriverConfig::paper_machine(spec.threads, sim_seed(seed));
    cfg.script = spec.compile();
    let metrics = run_traced(&mut workload, sched, &cfg, sink);
    assert!(
        !metrics.truncated,
        "scenario run truncated: {} / {policy_label} seed {seed}",
        spec.name
    );
    let windows = WindowedMetrics::from_lifecycle(&sink.lifecycle, spec.window, metrics.makespan);
    // Satellite conservation check: the windows must partition the run's
    // aggregate counters exactly, churn and faults included.
    let violations = windows.check_partition(&metrics);
    assert!(
        violations.is_empty(),
        "windowed conservation laws violated in {}: {violations:?}",
        spec.name
    );
    let report = RecoveryReport::build(spec, policy_label, seed, &metrics, &windows, &sink.inference);
    ScenarioOutcome {
        metrics,
        windows,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;
    use crate::request::RunRequest;
    use crate::spec::{FaultKind, FaultSpec};
    use seer_harness::{PolicyKind, ToJson};
    use seer_stamp::Benchmark;

    fn run_seer(spec: &ScenarioSpec, policy: PolicyKind, seed: u64) -> ScenarioOutcome {
        RunRequest::scenario(spec).policy(policy).seed(seed).run()
    }

    #[test]
    fn stationary_scenario_matches_plain_harness_run() {
        // A no-script scenario over the base benchmark must produce the
        // same commit total and trace hash as the plain harness runner for
        // the same (benchmark, policy, threads, seed, scale) coordinates.
        let spec = ScenarioSpec::stationary("plain", Benchmark::Ssca2, 4, 0.08, 100_000);
        let outcome = run_seer(&spec, PolicyKind::Rtm, 0);
        let plain = RunRequest::cell(seer_harness::Cell {
            benchmark: Benchmark::Ssca2,
            policy: PolicyKind::Rtm,
            threads: 4,
        })
        .scale(0.08)
        .run();
        assert_eq!(outcome.metrics.commits, plain.commits);
        assert_eq!(outcome.metrics.trace_hash, plain.trace_hash);
        assert_eq!(outcome.metrics.makespan, plain.makespan);
    }

    #[test]
    fn scenario_replays_bit_identically() {
        let spec = library::builtin("stats-amnesia").unwrap();
        let a = run_seer(&spec, PolicyKind::Seer, 0);
        let b = run_seer(&spec, PolicyKind::Seer, 0);
        assert_eq!(a.metrics.trace_hash, b.metrics.trace_hash);
        assert_eq!(a.metrics.commits, b.metrics.commits);
        assert_eq!(a.report, b.report);
        assert_eq!(
            a.report.to_json().to_string_compact(),
            b.report.to_json().to_string_compact()
        );
    }

    #[test]
    fn faults_change_the_schedule_but_not_the_work() {
        let mut faulty = ScenarioSpec::stationary("f", Benchmark::KmeansHigh, 4, 0.3, 100_000);
        faulty.faults.push(FaultSpec {
            at: 150_000,
            fault: FaultKind::StallLockHolder { cycles: 120_000 },
        });
        let clean = ScenarioSpec::stationary("f", Benchmark::KmeansHigh, 4, 0.3, 100_000);
        let with_fault = run_seer(&faulty, PolicyKind::Rtm, 1);
        let without = run_seer(&clean, PolicyKind::Rtm, 1);
        assert_eq!(
            with_fault.metrics.commits, without.metrics.commits,
            "faults perturb timing, never the amount of work"
        );
        assert_ne!(
            with_fault.metrics.trace_hash, without.metrics.trace_hash,
            "the stall must actually reschedule events"
        );
    }

    #[test]
    fn seer_reports_pair_stabilization_and_baselines_do_not() {
        let spec = library::builtin("stats-amnesia").unwrap();
        let seer = run_seer(&spec, PolicyKind::Seer, 0);
        let rtm = run_seer(&spec, PolicyKind::Rtm, 0);
        assert!(
            seer.report.scores.iter().any(|s| s.pairs_stable_at.is_some()),
            "Seer emits inference rounds: {:?}",
            seer.report.scores
        );
        assert!(
            rtm.report.scores.iter().all(|s| s.pairs_stable_at.is_none()),
            "RTM has no inference stream"
        );
    }
}
