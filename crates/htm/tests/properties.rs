//! Property-based tests for the HTM model.

use proptest::prelude::*;
use seer_htm::{AccessKind, HtmConfig, HtmMachine, LineSet};
use seer_sim::Topology;
use std::collections::HashSet;

proptest! {
    /// `LineSet` behaves exactly like a `HashSet<u64>` under inserts,
    /// membership queries and clears.
    #[test]
    fn line_set_matches_hash_set(ops in prop::collection::vec((0u64..500, 0u8..3), 0..400)) {
        let mut ours = LineSet::new();
        let mut model = HashSet::new();
        for (line, op) in ops {
            match op {
                0 => {
                    prop_assert_eq!(ours.insert(line), model.insert(line));
                }
                1 => {
                    prop_assert_eq!(ours.contains(line), model.contains(&line));
                }
                _ => {
                    ours.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(ours.len(), model.len());
        }
        let collected: HashSet<u64> = ours.iter().collect();
        prop_assert_eq!(collected, model);
    }

    /// Single-writer invariant: after any access sequence, no cache line is
    /// in the write set of one in-flight transaction and in any set of
    /// another — conflicting co-existence is impossible because the machine
    /// kills the other party eagerly.
    #[test]
    fn no_conflicting_coexistence(
        accesses in prop::collection::vec((0usize..4, 0u64..32, any::<bool>()), 1..300)
    ) {
        let mut m = HtmMachine::new(Topology::new(4, 1), HtmConfig::default());
        // Track what each live tx accessed, mirroring the machine.
        let mut reads: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
        let mut writes: Vec<HashSet<u64>> = vec![HashSet::new(); 4];
        let mut live = [false; 4];
        for (t, line, is_write) in accesses {
            if !live[t] {
                let squeezed = m.begin(t);
                prop_assert!(squeezed.is_empty(), "no SMT in this topology");
                live[t] = true;
                reads[t].clear();
                writes[t].clear();
            }
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let result = m.access(t, line, kind);
            for v in &result.victims {
                live[*v] = false;
                reads[*v].clear();
                writes[*v].clear();
            }
            if result.self_abort.is_some() {
                live[t] = false;
                reads[t].clear();
                writes[t].clear();
            } else if is_write {
                writes[t].insert(line);
            } else {
                reads[t].insert(line);
            }
            // Invariant: for every pair of live txs, write sets are
            // disjoint from the other's read+write sets.
            for a in 0..4 {
                for b in 0..4 {
                    if a == b || !live[a] || !live[b] {
                        continue;
                    }
                    prop_assert!(writes[a].is_disjoint(&writes[b]),
                        "double writer on a line");
                    prop_assert!(writes[a].is_disjoint(&reads[b]),
                        "writer coexists with reader");
                }
            }
        }
    }

    /// Capacity: a transaction writing k distinct lines into one cache set
    /// aborts exactly when k exceeds the effective ways.
    #[test]
    fn write_capacity_exact(ways in 1usize..8, extra in 0usize..6) {
        let cfg = HtmConfig {
            write_sets: 8,
            write_ways: ways,
            read_lines: 1024,
            smt_capacity_sharing: false,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(1, 1), cfg);
        m.begin(0);
        let k = ways + extra;
        let mut aborted_at = None;
        for i in 0..k {
            // Same set: stride by the set count.
            let line = (i as u64) * 8;
            let r = m.access(0, line, AccessKind::Write);
            if r.self_abort.is_some() {
                aborted_at = Some(i);
                break;
            }
        }
        if extra == 0 {
            prop_assert_eq!(aborted_at, None);
        } else {
            prop_assert_eq!(aborted_at, Some(ways), "abort on the (ways+1)-th line");
        }
    }

    /// kill_all returns exactly the set of in-flight transactions.
    #[test]
    fn kill_all_is_exhaustive(mask in 0u8..16) {
        let mut m = HtmMachine::new(Topology::new(4, 1), HtmConfig::default());
        let mut expect = Vec::new();
        for t in 0..4 {
            if mask & (1 << t) != 0 {
                m.begin(t);
                expect.push(t);
            }
        }
        let mut killed = m.kill_all();
        killed.sort_unstable();
        prop_assert_eq!(killed, expect);
        for t in 0..4 {
            prop_assert!(!m.in_tx(t));
        }
    }
}
