//! # seer-htm — a best-effort hardware transactional memory model
//!
//! This crate models an Intel TSX-class HTM at the level of abstraction a
//! *scheduler* interacts with (the substrate the Seer paper runs on — see
//! `DESIGN.md` §2 for the hardware→simulator substitution argument):
//!
//! * [`machine::HtmMachine`] — per-logical-CPU transaction slots with
//!   cache-line read/write sets, eager invalidation-based conflict
//!   detection (requester-wins), a sets×ways write-capacity model and a
//!   flat read budget, both shared (divided) between SMT siblings that are
//!   simultaneously transactional.
//! * [`status::XStatus`] — the TSX status word: `_XBEGIN_STARTED` or a
//!   coarse abort mask (conflict / capacity / explicit / retry / none). The
//!   machine never reveals *which* transaction caused an abort; the
//!   information gap Seer works around is preserved by construction.
//! * [`config::HtmConfig`] / [`config::CostModel`] — buffer geometry and
//!   the latency model used by the runtime driver.
//!
//! The crate is time-free: the DES driver (in `seer-runtime`) owns virtual
//! time and feeds accesses in global time order, turning the machine's
//! answers (victims, self-aborts) into scheduled events.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod line;
pub mod machine;
pub mod status;

pub use config::{ConflictResolution, CostModel, HtmConfig};
pub use line::{LineAddr, LineSet};
pub use machine::{AbortCause, AccessKind, AccessResult, HtmMachine};
pub use status::{xabort_codes, XStatus};

impl From<AbortCause> for XStatus {
    /// The status word software observes for each internal abort cause.
    fn from(cause: AbortCause) -> Self {
        match cause {
            AbortCause::Conflict => XStatus::conflict(),
            AbortCause::WriteCapacity | AbortCause::ReadCapacity => XStatus::capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_cause_maps_to_coarse_status() {
        assert!(XStatus::from(AbortCause::Conflict).is_conflict());
        assert!(XStatus::from(AbortCause::WriteCapacity).is_capacity());
        assert!(XStatus::from(AbortCause::ReadCapacity).is_capacity());
        // Read and write capacity are indistinguishable to software,
        // exactly like TSX.
        assert_eq!(
            XStatus::from(AbortCause::WriteCapacity),
            XStatus::from(AbortCause::ReadCapacity)
        );
    }
}
