//! Cache-line addresses and a fast open-addressing line set.
//!
//! Transactional read/write sets are tracked at cache-line granularity,
//! exactly like TSX. The hot operations are `insert` (every transactional
//! access) and `contains` (conflict probing by every concurrent access), so
//! the set is a simple power-of-two open-addressing table with linear
//! probing and an FxHash-style multiplicative hash — no allocation per
//! access, O(1) amortized, and `clear` is proportional to occupancy.

/// A cache-line address (byte address >> 6 on the modelled 64-byte lines).
pub type LineAddr = u64;

/// Sentinel for an empty slot. Real line addresses never reach this value
/// because the workload address spaces are far below `2^63`.
const EMPTY: u64 = u64::MAX;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn hash(line: LineAddr) -> u64 {
    // FxHash-style single multiply + rotate: plenty for line addresses.
    line.wrapping_mul(FX_SEED).rotate_left(26)
}

/// An open-addressing set of cache-line addresses.
///
/// ```
/// use seer_htm::line::LineSet;
///
/// let mut s = LineSet::new();
/// assert!(s.insert(10));
/// assert!(!s.insert(10)); // already present
/// assert!(s.contains(10));
/// assert_eq!(s.len(), 1);
/// s.clear();
/// assert!(!s.contains(10));
/// ```
#[derive(Debug, Clone)]
pub struct LineSet {
    slots: Vec<u64>,
    items: Vec<LineAddr>,
    mask: usize,
}

impl Default for LineSet {
    fn default() -> Self {
        Self::new()
    }
}

impl LineSet {
    /// Creates an empty set with a small initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(64)
    }

    /// Creates an empty set sized for about `cap` lines without rehashing.
    pub fn with_capacity(cap: usize) -> Self {
        let size = (cap.max(8) * 2).next_power_of_two();
        Self {
            slots: vec![EMPTY; size],
            items: Vec::with_capacity(cap),
            mask: size - 1,
        }
    }

    /// Number of distinct lines in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no lines are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Inserts `line`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, line: LineAddr) -> bool {
        debug_assert_ne!(line, EMPTY, "sentinel value used as line address");
        if self.items.len() * 2 >= self.slots.len() {
            self.grow();
        }
        let mut idx = hash(line) as usize & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == EMPTY {
                self.slots[idx] = line;
                self.items.push(line);
                return true;
            }
            if slot == line {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// True when `line` is in the set.
    #[inline]
    pub fn contains(&self, line: LineAddr) -> bool {
        let mut idx = hash(line) as usize & self.mask;
        loop {
            let slot = self.slots[idx];
            if slot == line {
                return true;
            }
            if slot == EMPTY {
                return false;
            }
            idx = (idx + 1) & self.mask;
        }
    }

    /// Removes all lines, keeping allocated capacity.
    pub fn clear(&mut self) {
        // Cheaper to re-blank only the occupied slots when sparse.
        if self.items.len() * 4 < self.slots.len() {
            // Re-probe each item to blank its slot; with linear probing we
            // cannot blank selectively without tombstones, so fall back to a
            // full wipe when any cluster is ambiguous. Full wipe of the used
            // region is simplest and still cheap for our sizes.
            for s in &mut self.slots {
                *s = EMPTY;
            }
        } else {
            for s in &mut self.slots {
                *s = EMPTY;
            }
        }
        self.items.clear();
    }

    /// Iterates the lines in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.items.iter().copied()
    }

    #[cold]
    fn grow(&mut self) {
        let new_size = self.slots.len() * 2;
        self.slots.clear();
        self.slots.resize(new_size, EMPTY);
        self.mask = new_size - 1;
        for &line in &self.items {
            let mut idx = hash(line) as usize & self.mask;
            while self.slots[idx] != EMPTY {
                idx = (idx + 1) & self.mask;
            }
            self.slots[idx] = line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_roundtrip() {
        let mut s = LineSet::new();
        for i in 0..1000u64 {
            assert!(s.insert(i * 7));
        }
        assert_eq!(s.len(), 1000);
        for i in 0..1000u64 {
            assert!(s.contains(i * 7));
        }
        assert!(!s.contains(3));
    }

    #[test]
    fn duplicate_insert_returns_false() {
        let mut s = LineSet::new();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut s = LineSet::new();
        for i in 0..100u64 {
            s.insert(i);
        }
        s.clear();
        assert!(s.is_empty());
        for i in 0..100u64 {
            assert!(!s.contains(i));
        }
        // Reusable after clear.
        assert!(s.insert(5));
        assert!(s.contains(5));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = LineSet::with_capacity(4);
        for i in 0..10_000u64 {
            assert!(s.insert(i.wrapping_mul(0x9E3779B97F4A7C15)));
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn iter_in_insertion_order() {
        let mut s = LineSet::new();
        s.insert(30);
        s.insert(10);
        s.insert(20);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![30, 10, 20]);
    }

    #[test]
    fn adversarial_same_bucket_keys() {
        // Keys chosen to collide in a small table exercise linear probing.
        let mut s = LineSet::with_capacity(8);
        let base = 0x1000u64;
        for i in 0..64u64 {
            assert!(s.insert(base + i * 16));
        }
        for i in 0..64u64 {
            assert!(s.contains(base + i * 16));
        }
        assert!(!s.contains(base + 64 * 16));
    }
}
