//! The best-effort HTM conflict/capacity engine.
//!
//! [`HtmMachine`] tracks, per logical CPU, whether a hardware transaction is
//! in flight and its read/write line sets. The DES driver feeds it every
//! transactional access in global time order; the machine answers with the
//! consequences:
//!
//! * **conflicts** — eager, invalidation-based, requester-wins. A
//!   transactional (or non-transactional) *write* to line `L` kills every
//!   other in-flight transaction holding `L` in its read or write set; a
//!   *read* of `L` kills every other in-flight transaction with `L` in its
//!   write set. This mirrors the MESI-based behaviour of TSX, where the
//!   transaction that receives the invalidation (or sharing downgrade)
//!   aborts.
//! * **capacity** — the write set is bounded by a sets×ways L1 model, the
//!   read set by a flat budget; both shrink when an SMT sibling is also in
//!   a transaction (see [`HtmConfig`]). The overflowing access aborts the
//!   *accessor*; a sibling *starting* a transaction can retroactively
//!   squeeze a running one over its (new, smaller) budget, which is exactly
//!   the pathology Seer's core locks address.
//!
//! The machine clears the slots of every transaction it reports as aborted,
//! so the caller only performs policy bookkeeping for them. It never tells
//! a scheduler *who* caused an abort — that information is returned to the
//! driver for ground-truth metrics only, mirroring the real TSX information
//! gap.

use seer_sim::{ThreadId, Topology};

use crate::config::{ConflictResolution, HtmConfig};
use crate::line::{LineAddr, LineSet};

/// Kind of a memory access within (or outside) a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Why the machine aborted a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCause {
    /// Lost a data conflict to another thread's access.
    Conflict,
    /// Overflowed the write-set (L1) geometry.
    WriteCapacity,
    /// Overflowed the read-set budget.
    ReadCapacity,
}

/// Result of feeding one transactional access to the machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessResult {
    /// Set when the *accessor itself* aborted (capacity overflow). Its slot
    /// has already been cleared.
    pub self_abort: Option<AbortCause>,
    /// Other transactions killed by this access (data conflicts). Their
    /// slots have already been cleared.
    pub victims: Vec<ThreadId>,
}

#[derive(Debug, Clone)]
struct TxSlot {
    active: bool,
    read_set: LineSet,
    write_set: LineSet,
    /// Occupancy of each write-set cache set.
    set_occupancy: Vec<u8>,
    /// Cache sets touched by the current transaction (for O(touched) clear).
    touched_sets: Vec<u32>,
    /// Maximum single-set occupancy reached so far (monotone within one
    /// transaction) — used for retroactive squeeze checks.
    max_occupancy: u8,
}

impl TxSlot {
    fn new(write_sets: usize) -> Self {
        Self {
            active: false,
            read_set: LineSet::with_capacity(256),
            write_set: LineSet::with_capacity(64),
            set_occupancy: vec![0; write_sets],
            touched_sets: Vec::with_capacity(64),
            max_occupancy: 0,
        }
    }

    fn reset(&mut self) {
        self.active = false;
        self.read_set.clear();
        self.write_set.clear();
        for &s in &self.touched_sets {
            self.set_occupancy[s as usize] = 0;
        }
        self.touched_sets.clear();
        self.max_occupancy = 0;
    }
}

/// The simulated best-effort HTM. See the module docs for semantics.
///
/// ```
/// use seer_htm::{AccessKind, HtmConfig, HtmMachine};
/// use seer_sim::Topology;
///
/// let mut m = HtmMachine::new(Topology::haswell_e3(), HtmConfig::default());
/// m.begin(0);
/// m.begin(1);
/// m.access(0, 42, AccessKind::Read);
/// // Thread 1 writes the line thread 0 read: requester wins, 0 aborts.
/// let outcome = m.access(1, 42, AccessKind::Write);
/// assert_eq!(outcome.victims, vec![0]);
/// assert!(!m.in_tx(0));
/// m.commit(1);
/// ```
#[derive(Debug, Clone)]
pub struct HtmMachine {
    topo: Topology,
    cfg: HtmConfig,
    slots: Vec<TxSlot>,
    /// Scenario capacity-pressure override: `(ways, read_lines)` clamps
    /// applied on top of the configured geometry (`None` on each axis =
    /// the configured budget). Set by [`HtmMachine::set_capacity_override`].
    capacity_override: (Option<usize>, Option<usize>),
}

impl HtmMachine {
    /// A machine over `topo` logical CPUs with buffer geometry `cfg`.
    pub fn new(topo: Topology, cfg: HtmConfig) -> Self {
        let slots = (0..topo.logical_cpus())
            .map(|_| TxSlot::new(cfg.write_sets))
            .collect();
        Self {
            topo,
            cfg,
            slots,
            capacity_override: (None, None),
        }
    }

    /// Installs (or, with two `None`s, lifts) a capacity-pressure
    /// override: the effective write-set ways and read-set line budget
    /// are clamped to at most `ways` / `read_lines` until the next call.
    /// Already-oversized in-flight transactions are not retroactively
    /// aborted — like real hardware, the shrunken budget bites at their
    /// next access.
    pub fn set_capacity_override(&mut self, ways: Option<usize>, read_lines: Option<usize>) {
        self.capacity_override = (ways, read_lines);
    }

    /// The capacity-pressure override currently in force.
    pub fn capacity_override(&self) -> (Option<usize>, Option<usize>) {
        self.capacity_override
    }

    /// Effective write-set ways with `co` co-resident transactions, after
    /// the scenario override clamp.
    fn clamped_ways(&self, co: usize) -> usize {
        let ways = self.cfg.effective_ways(co);
        match self.capacity_override.0 {
            Some(cap) => ways.min(cap),
            None => ways,
        }
    }

    /// Effective read-set line budget with `co` co-resident transactions,
    /// after the scenario override clamp.
    fn clamped_read_lines(&self, co: usize) -> usize {
        let lines = self.cfg.effective_read_lines(co);
        match self.capacity_override.1 {
            Some(cap) => lines.min(cap),
            None => lines,
        }
    }

    /// The machine's topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The buffer geometry in use.
    pub fn config(&self) -> &HtmConfig {
        &self.cfg
    }

    /// True when `thread` has a transaction in flight (`xtest`).
    pub fn in_tx(&self, thread: ThreadId) -> bool {
        self.slots[thread].active
    }

    /// Number of in-flight transactions on the physical core of `thread`,
    /// including `thread`'s own if active.
    pub fn co_resident_txs(&self, thread: ThreadId) -> usize {
        self.topo
            .siblings(thread)
            .filter(|&s| self.slots[s].active)
            .count()
    }

    /// Starts a transaction on `thread`.
    ///
    /// Returns SMT siblings whose running transactions were squeezed over
    /// their shrunken capacity budgets and therefore aborted (their slots
    /// are cleared; report them as [`AbortCause::WriteCapacity`] /
    /// [`AbortCause::ReadCapacity`] — the returned pairs carry the cause).
    ///
    /// Allocating convenience wrapper around [`HtmMachine::begin_into`];
    /// per-event callers (the DES driver) pass a reusable scratch vector
    /// to the latter instead.
    ///
    /// # Panics
    /// If `thread` already has a transaction in flight.
    pub fn begin(&mut self, thread: ThreadId) -> Vec<(ThreadId, AbortCause)> {
        let mut squeezed = Vec::new();
        self.begin_into(thread, &mut squeezed);
        squeezed
    }

    /// [`HtmMachine::begin`] writing the squeezed siblings into `squeezed`
    /// (cleared first) instead of allocating a fresh vector.
    ///
    /// # Panics
    /// If `thread` already has a transaction in flight.
    pub fn begin_into(&mut self, thread: ThreadId, squeezed: &mut Vec<(ThreadId, AbortCause)>) {
        assert!(
            !self.slots[thread].active,
            "thread {thread} nested xbegin (flat nesting not modelled)"
        );
        squeezed.clear();
        self.slots[thread].active = true;
        if self.cfg.smt_capacity_sharing {
            let co = self.co_resident_txs(thread);
            let ways = self.clamped_ways(co);
            let reads = self.clamped_read_lines(co);
            // `Topology` is `Copy`: iterate a copy so the sibling walk
            // doesn't hold a borrow of `self` (no temporary collect).
            let topo = self.topo;
            for s in topo.siblings(thread).filter(|&s| s != thread) {
                if !self.slots[s].active {
                    continue;
                }
                if usize::from(self.slots[s].max_occupancy) > ways {
                    self.slots[s].reset();
                    squeezed.push((s, AbortCause::WriteCapacity));
                } else if self.slots[s].read_set.len() > reads {
                    self.slots[s].reset();
                    squeezed.push((s, AbortCause::ReadCapacity));
                }
            }
        }
    }

    /// Feeds a transactional access by `thread` to `line`.
    ///
    /// Allocating convenience wrapper around [`HtmMachine::access_into`].
    ///
    /// # Panics
    /// If `thread` has no transaction in flight.
    pub fn access(&mut self, thread: ThreadId, line: LineAddr, kind: AccessKind) -> AccessResult {
        let mut victims = Vec::new();
        let self_abort = self.access_into(thread, line, kind, &mut victims);
        AccessResult { self_abort, victims }
    }

    /// [`HtmMachine::access`] writing conflict victims into `victims`
    /// (cleared first) instead of allocating; returns the accessor's own
    /// abort cause, if it aborted.
    ///
    /// # Panics
    /// If `thread` has no transaction in flight.
    pub fn access_into(
        &mut self,
        thread: ThreadId,
        line: LineAddr,
        kind: AccessKind,
        victims: &mut Vec<ThreadId>,
    ) -> Option<AbortCause> {
        assert!(
            self.slots[thread].active,
            "thread {thread} transactional access outside a transaction"
        );
        victims.clear();

        // 1. Conflict pass. Under requester-wins (TSX), this access
        //    invalidates (write) or downgrades (read) the line in every
        //    other in-flight transaction; under requester-aborts, hitting
        //    a line another transaction owns kills *this* transaction.
        match self.cfg.conflict_resolution {
            ConflictResolution::RequesterWins => {
                self.kill_conflicting(thread, line, kind, victims);
            }
            ConflictResolution::RequesterAborts => {
                if self.someone_else_owns(thread, line, kind) {
                    self.slots[thread].reset();
                    return Some(AbortCause::Conflict);
                }
            }
        }

        // 2. Capacity pass: extend our own tracked sets. The budgets are
        //    computed before the slot borrow so the scenario clamp applies
        //    here exactly as in `begin`.
        let co = self.co_resident_txs(thread);
        let ways_budget = self.clamped_ways(co);
        let read_budget = self.clamped_read_lines(co);
        let slot = &mut self.slots[thread];
        match kind {
            AccessKind::Write => {
                if slot.write_set.insert(line) {
                    let set_idx = (line % self.cfg.write_sets as u64) as usize;
                    if slot.set_occupancy[set_idx] == 0 {
                        slot.touched_sets.push(set_idx as u32);
                    }
                    slot.set_occupancy[set_idx] += 1;
                    slot.max_occupancy = slot.max_occupancy.max(slot.set_occupancy[set_idx]);
                    if usize::from(slot.set_occupancy[set_idx]) > ways_budget {
                        slot.reset();
                        return Some(AbortCause::WriteCapacity);
                    }
                }
            }
            AccessKind::Read => {
                if slot.read_set.insert(line) && slot.read_set.len() > read_budget {
                    slot.reset();
                    return Some(AbortCause::ReadCapacity);
                }
            }
        }
        None
    }

    /// Feeds a *non-transactional* access (fall-back path, lock words).
    /// Returns the transactions it kills; their slots are cleared.
    ///
    /// Allocating convenience wrapper around
    /// [`HtmMachine::non_tx_access_into`].
    pub fn non_tx_access(
        &mut self,
        thread: ThreadId,
        line: LineAddr,
        kind: AccessKind,
    ) -> Vec<ThreadId> {
        let mut victims = Vec::new();
        self.non_tx_access_into(thread, line, kind, &mut victims);
        victims
    }

    /// [`HtmMachine::non_tx_access`] writing the killed transactions into
    /// `victims` (cleared first) instead of allocating.
    pub fn non_tx_access_into(
        &mut self,
        thread: ThreadId,
        line: LineAddr,
        kind: AccessKind,
        victims: &mut Vec<ThreadId>,
    ) {
        victims.clear();
        self.kill_conflicting(thread, line, kind, victims);
    }

    /// Commits the transaction on `thread` (`xend`), clearing its tracking.
    ///
    /// # Panics
    /// If no transaction is in flight — like executing `xend` outside a
    /// transaction.
    pub fn commit(&mut self, thread: ThreadId) {
        assert!(
            self.slots[thread].active,
            "thread {thread} xend outside a transaction"
        );
        self.slots[thread].reset();
    }

    /// Force-aborts the transaction on `thread` (asynchronous event or
    /// explicit `xabort`). No-op if none is in flight.
    pub fn abort(&mut self, thread: ThreadId) {
        if self.slots[thread].active {
            self.slots[thread].reset();
        }
    }

    /// Aborts every in-flight transaction and returns them — used when the
    /// single-global fall-back lock is acquired, which every hardware
    /// transaction subscribes to (reads) at begin.
    ///
    /// Allocating convenience wrapper around [`HtmMachine::kill_all_into`].
    pub fn kill_all(&mut self) -> Vec<ThreadId> {
        let mut killed = Vec::new();
        self.kill_all_into(&mut killed);
        killed
    }

    /// [`HtmMachine::kill_all`] writing the killed transactions into
    /// `killed` (cleared first) instead of allocating.
    pub fn kill_all_into(&mut self, killed: &mut Vec<ThreadId>) {
        killed.clear();
        for (t, slot) in self.slots.iter_mut().enumerate() {
            if slot.active {
                slot.reset();
                killed.push(t);
            }
        }
    }

    /// Current read-set size of `thread`'s transaction.
    pub fn read_set_len(&self, thread: ThreadId) -> usize {
        self.slots[thread].read_set.len()
    }

    /// Current write-set size of `thread`'s transaction.
    pub fn write_set_len(&self, thread: ThreadId) -> usize {
        self.slots[thread].write_set.len()
    }

    /// True when any other in-flight transaction holds `line` in a way
    /// that conflicts with an access of `kind`.
    fn someone_else_owns(&self, thread: ThreadId, line: LineAddr, kind: AccessKind) -> bool {
        (0..self.slots.len()).any(|t| {
            t != thread
                && self.slots[t].active
                && match kind {
                    AccessKind::Write => {
                        self.slots[t].write_set.contains(line)
                            || self.slots[t].read_set.contains(line)
                    }
                    AccessKind::Read => self.slots[t].write_set.contains(line),
                }
        })
    }

    fn kill_conflicting(
        &mut self,
        thread: ThreadId,
        line: LineAddr,
        kind: AccessKind,
        victims: &mut Vec<ThreadId>,
    ) {
        for t in 0..self.slots.len() {
            if t == thread || !self.slots[t].active {
                continue;
            }
            let hit = match kind {
                AccessKind::Write => {
                    self.slots[t].write_set.contains(line) || self.slots[t].read_set.contains(line)
                }
                AccessKind::Read => self.slots[t].write_set.contains(line),
            };
            if hit {
                self.slots[t].reset();
                victims.push(t);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ConflictResolution;

    fn machine() -> HtmMachine {
        HtmMachine::new(Topology::haswell_e3(), HtmConfig::default())
    }

    #[test]
    fn write_kills_concurrent_reader() {
        let mut m = machine();
        m.begin(0);
        m.begin(1);
        assert_eq!(m.access(0, 100, AccessKind::Read), AccessResult::default());
        let r = m.access(1, 100, AccessKind::Write);
        assert_eq!(r.victims, vec![0]);
        assert!(r.self_abort.is_none());
        assert!(!m.in_tx(0), "victim slot cleared");
        assert!(m.in_tx(1), "requester wins");
    }

    #[test]
    fn write_kills_concurrent_writer() {
        let mut m = machine();
        m.begin(0);
        m.begin(1);
        m.access(0, 7, AccessKind::Write);
        let r = m.access(1, 7, AccessKind::Write);
        assert_eq!(r.victims, vec![0]);
    }

    #[test]
    fn read_kills_concurrent_writer_but_not_reader() {
        let mut m = machine();
        m.begin(0);
        m.begin(1);
        m.begin(2);
        m.access(0, 9, AccessKind::Write);
        m.access(1, 9, AccessKind::Read); // killed 0? no: read of 9 kills writer 0
        assert!(!m.in_tx(0));
        // Thread 2 reads the same line: 1 only *read* it, so no kill.
        let r = m.access(2, 9, AccessKind::Read);
        assert!(r.victims.is_empty());
        assert!(m.in_tx(1));
    }

    #[test]
    fn read_read_sharing_is_fine() {
        let mut m = machine();
        m.begin(0);
        m.begin(1);
        m.access(0, 5, AccessKind::Read);
        let r = m.access(1, 5, AccessKind::Read);
        assert!(r.victims.is_empty());
        assert!(m.in_tx(0) && m.in_tx(1));
    }

    #[test]
    fn non_tx_write_kills_readers_and_writers() {
        let mut m = machine();
        m.begin(0);
        m.begin(1);
        m.access(0, 11, AccessKind::Read);
        m.access(1, 11, AccessKind::Write);
        assert!(!m.in_tx(0)); // killed by 1's write
        m.begin(2);
        m.access(2, 11, AccessKind::Read);
        assert!(!m.in_tx(1)); // 2's read downgraded writer 1
        let victims = m.non_tx_access(3, 11, AccessKind::Write);
        assert_eq!(victims, vec![2]);
    }

    #[test]
    fn commit_clears_sets() {
        let mut m = machine();
        m.begin(0);
        m.access(0, 1, AccessKind::Write);
        m.access(0, 2, AccessKind::Read);
        assert_eq!(m.write_set_len(0), 1);
        assert_eq!(m.read_set_len(0), 1);
        m.commit(0);
        assert!(!m.in_tx(0));
        // A new transaction does not see stale lines.
        m.begin(1);
        let r = m.access(1, 1, AccessKind::Write);
        assert!(r.victims.is_empty());
    }

    #[test]
    fn write_capacity_aborts_accessor() {
        let cfg = HtmConfig {
            write_sets: 4,
            write_ways: 2,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        m.begin(0);
        // Lines 0, 4, 8 all map to set 0 with 4 sets; ways = 2, so the third
        // distinct line in the set overflows.
        assert!(m.access(0, 0, AccessKind::Write).self_abort.is_none());
        assert!(m.access(0, 4, AccessKind::Write).self_abort.is_none());
        let r = m.access(0, 8, AccessKind::Write);
        assert_eq!(r.self_abort, Some(AbortCause::WriteCapacity));
        assert!(!m.in_tx(0));
    }

    #[test]
    fn read_capacity_aborts_accessor() {
        let cfg = HtmConfig {
            read_lines: 3,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        m.begin(0);
        for l in 0..3u64 {
            assert!(m.access(0, l, AccessKind::Read).self_abort.is_none());
        }
        let r = m.access(0, 3, AccessKind::Read);
        assert_eq!(r.self_abort, Some(AbortCause::ReadCapacity));
    }

    #[test]
    fn duplicate_accesses_do_not_consume_capacity() {
        let cfg = HtmConfig {
            read_lines: 2,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        m.begin(0);
        for _ in 0..100 {
            assert!(m.access(0, 42, AccessKind::Read).self_abort.is_none());
        }
        assert_eq!(m.read_set_len(0), 1);
    }

    #[test]
    fn smt_sibling_begin_squeezes_running_tx() {
        let cfg = HtmConfig {
            write_sets: 1,
            write_ways: 8,
            ..HtmConfig::default()
        };
        // 1 physical core, 2 hyper-threads: threads 0 and 1 are siblings.
        let mut m = HtmMachine::new(Topology::new(1, 2), cfg);
        m.begin(0);
        // Occupy 6 of 8 ways: fine while alone.
        for l in 0..6u64 {
            assert!(m.access(0, l, AccessKind::Write).self_abort.is_none());
        }
        // Sibling starts a transaction: effective ways drop to 4 and the
        // running transaction (occupancy 6) is squeezed out.
        let squeezed = m.begin(1);
        assert_eq!(squeezed, vec![(0, AbortCause::WriteCapacity)]);
        assert!(!m.in_tx(0));
        assert!(m.in_tx(1));
    }

    #[test]
    fn no_squeeze_on_distinct_cores() {
        let cfg = HtmConfig {
            write_sets: 1,
            write_ways: 8,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        m.begin(0);
        for l in 0..6u64 {
            m.access(0, l, AccessKind::Write);
        }
        let squeezed = m.begin(1);
        assert!(squeezed.is_empty());
        assert!(m.in_tx(0));
    }

    #[test]
    fn capacity_sharing_halves_effective_ways_for_accessor() {
        let cfg = HtmConfig {
            write_sets: 1,
            write_ways: 4,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(1, 2), cfg);
        m.begin(0);
        m.begin(1);
        // With a co-resident tx, effective ways = 2.
        assert!(m.access(0, 0, AccessKind::Write).self_abort.is_none());
        assert!(m.access(0, 1, AccessKind::Write).self_abort.is_none());
        let r = m.access(0, 2, AccessKind::Write);
        assert_eq!(r.self_abort, Some(AbortCause::WriteCapacity));
    }

    #[test]
    fn kill_all_clears_every_tx() {
        let mut m = machine();
        m.begin(0);
        m.begin(3);
        m.begin(5);
        let mut killed = m.kill_all();
        killed.sort_unstable();
        assert_eq!(killed, vec![0, 3, 5]);
        assert!(!m.in_tx(0) && !m.in_tx(3) && !m.in_tx(5));
        assert!(m.kill_all().is_empty());
    }

    #[test]
    fn abort_is_idempotent() {
        let mut m = machine();
        m.begin(2);
        m.abort(2);
        m.abort(2);
        assert!(!m.in_tx(2));
    }

    #[test]
    #[should_panic(expected = "nested xbegin")]
    fn nested_begin_panics() {
        let mut m = machine();
        m.begin(0);
        m.begin(0);
    }

    #[test]
    #[should_panic(expected = "outside a transaction")]
    fn commit_without_tx_panics() {
        let mut m = machine();
        m.commit(0);
    }

    #[test]
    fn requester_aborts_policy_inverts_the_victim() {
        let cfg = HtmConfig {
            conflict_resolution: ConflictResolution::RequesterAborts,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::haswell_e3(), cfg);
        m.begin(0);
        m.begin(1);
        m.access(0, 100, AccessKind::Read);
        let r = m.access(1, 100, AccessKind::Write);
        assert_eq!(r.self_abort, Some(AbortCause::Conflict));
        assert!(r.victims.is_empty());
        assert!(m.in_tx(0), "holder survives under requester-aborts");
        assert!(!m.in_tx(1));
        // Read-read still fine.
        m.begin(2);
        let r = m.access(2, 100, AccessKind::Read);
        assert!(r.self_abort.is_none());
    }

    #[test]
    fn capacity_override_shrinks_and_restores_budgets() {
        let cfg = HtmConfig {
            write_sets: 1,
            write_ways: 8,
            read_lines: 8,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        // Clamped to 2 ways / 3 read lines: the third write overflows.
        m.set_capacity_override(Some(2), Some(3));
        m.begin(0);
        assert!(m.access(0, 0, AccessKind::Write).self_abort.is_none());
        assert!(m.access(0, 1, AccessKind::Write).self_abort.is_none());
        let r = m.access(0, 2, AccessKind::Write);
        assert_eq!(r.self_abort, Some(AbortCause::WriteCapacity));
        // Read budget clamps independently.
        m.begin(0);
        for l in 10..13u64 {
            assert!(m.access(0, l, AccessKind::Read).self_abort.is_none());
        }
        let r = m.access(0, 13, AccessKind::Read);
        assert_eq!(r.self_abort, Some(AbortCause::ReadCapacity));
        // Lifting the override restores the configured geometry.
        m.set_capacity_override(None, None);
        m.begin(0);
        for l in 0..8u64 {
            assert!(m.access(0, l, AccessKind::Write).self_abort.is_none());
        }
        m.commit(0);
    }

    #[test]
    fn capacity_override_never_widens_budgets() {
        let cfg = HtmConfig {
            read_lines: 3,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        // A clamp above the configured budget is a no-op (min, not set).
        m.set_capacity_override(None, Some(1000));
        m.begin(0);
        for l in 0..3u64 {
            assert!(m.access(0, l, AccessKind::Read).self_abort.is_none());
        }
        let r = m.access(0, 3, AccessKind::Read);
        assert_eq!(r.self_abort, Some(AbortCause::ReadCapacity));
    }

    #[test]
    fn capacity_override_squeezes_at_sibling_begin() {
        let cfg = HtmConfig {
            write_sets: 1,
            write_ways: 8,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(1, 2), cfg);
        m.begin(0);
        for l in 0..3u64 {
            assert!(m.access(0, l, AccessKind::Write).self_abort.is_none());
        }
        // Override lands mid-transaction: occupancy 3 > clamp 2, but the
        // clamp only bites at the next budget check — here the sibling's
        // begin-time squeeze.
        m.set_capacity_override(Some(2), None);
        assert!(m.in_tx(0));
        let squeezed = m.begin(1);
        assert_eq!(squeezed, vec![(0, AbortCause::WriteCapacity)]);
    }

    #[test]
    fn set_occupancy_resets_across_txs() {
        let cfg = HtmConfig {
            write_sets: 2,
            write_ways: 2,
            ..HtmConfig::default()
        };
        let mut m = HtmMachine::new(Topology::new(2, 1), cfg);
        for _ in 0..10 {
            m.begin(0);
            assert!(m.access(0, 0, AccessKind::Write).self_abort.is_none());
            assert!(m.access(0, 2, AccessKind::Write).self_abort.is_none());
            m.commit(0);
        }
    }
}
