//! TSX-style transaction status word.
//!
//! Intel TSX reports the outcome of `xbegin` through EAX: either the
//! sentinel `_XBEGIN_STARTED` (all ones) or a *coarse* bitmask describing
//! the abort — explicit, may-retry, data conflict, capacity overflow, debug,
//! nested. Crucially the mask never identifies the conflicting transaction
//! or the address involved; that information gap is the entire motivation
//! for Seer (paper §1, Figure 1). This module reproduces the interface
//! faithfully so that schedulers built on it can observe exactly as much as
//! they could on real hardware, and no more.

/// Abort-cause bits, mirroring Intel's `_XABORT_*` flags.
pub mod bits {
    /// Aborted by an explicit `xabort` instruction (e.g. the early-subscription
    /// check of the fall-back lock, Alg. 1 line 12).
    pub const EXPLICIT: u32 = 1 << 0;
    /// The hardware suggests the transaction may succeed on retry.
    pub const RETRY: u32 = 1 << 1;
    /// A data conflict with another logical processor was detected.
    pub const CONFLICT: u32 = 1 << 2;
    /// A read- or write-set buffer overflowed (cache capacity exceeded).
    pub const CAPACITY: u32 = 1 << 3;
    /// A debug breakpoint was hit (modelled but unused by the schedulers).
    pub const DEBUG: u32 = 1 << 4;
    /// Abort happened inside a nested transaction.
    pub const NESTED: u32 = 1 << 5;
}

/// Status word returned by [`XStatus::started`] or carrying abort causes.
///
/// `XStatus` deliberately exposes only what TSX exposes. The simulator's
/// internal ground truth (who actually killed whom) lives in the runtime's
/// metrics and is *never* visible to a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XStatus(u32);

/// The value TSX writes to EAX when a transaction successfully starts.
const XBEGIN_STARTED: u32 = u32::MAX;

impl XStatus {
    /// The "transaction is running" sentinel (`_XBEGIN_STARTED`).
    pub fn started() -> Self {
        Self(XBEGIN_STARTED)
    }

    /// An abort status with the given cause bits and explicit-abort code.
    ///
    /// The `code` occupies bits 24..32 like TSX's `_XABORT_CODE`, and is only
    /// meaningful when [`bits::EXPLICIT`] is set.
    pub fn aborted(cause_bits: u32, code: u8) -> Self {
        debug_assert!(cause_bits & 0xFF00_0000 == 0, "cause bits overlap code");
        debug_assert_ne!(cause_bits, XBEGIN_STARTED);
        Self(cause_bits | (u32::from(code) << 24))
    }

    /// A data-conflict abort, marked retryable (the common TSX encoding).
    pub fn conflict() -> Self {
        Self::aborted(bits::CONFLICT | bits::RETRY, 0)
    }

    /// A capacity abort (not marked retryable: retrying the same footprint
    /// will overflow again unless conditions change).
    pub fn capacity() -> Self {
        Self::aborted(bits::CAPACITY, 0)
    }

    /// An explicit abort with a software-defined code.
    pub fn explicit(code: u8) -> Self {
        Self::aborted(bits::EXPLICIT, code)
    }

    /// An abort with no cause bits set at all — TSX does this for
    /// asynchronous events such as interrupts, page faults and ring
    /// transitions. Schedulers cannot distinguish these further.
    pub fn other() -> Self {
        Self(0)
    }

    /// True when this is the `_XBEGIN_STARTED` sentinel.
    pub fn is_started(self) -> bool {
        self.0 == XBEGIN_STARTED
    }

    /// True when the abort was caused by a data conflict.
    pub fn is_conflict(self) -> bool {
        !self.is_started() && self.0 & bits::CONFLICT != 0
    }

    /// True when the abort was caused by capacity overflow.
    pub fn is_capacity(self) -> bool {
        !self.is_started() && self.0 & bits::CAPACITY != 0
    }

    /// True when the abort was raised by an explicit `xabort`.
    pub fn is_explicit(self) -> bool {
        !self.is_started() && self.0 & bits::EXPLICIT != 0
    }

    /// True when the hardware hints the transaction may succeed on retry.
    pub fn may_retry(self) -> bool {
        !self.is_started() && self.0 & bits::RETRY != 0
    }

    /// True for the "no cause bits" asynchronous-event abort.
    pub fn is_other(self) -> bool {
        self.0 & 0x00FF_FFFF == 0 && !self.is_started()
    }

    /// The 8-bit code passed to an explicit `xabort`, if any.
    pub fn explicit_code(self) -> Option<u8> {
        if self.is_explicit() {
            Some((self.0 >> 24) as u8)
        } else {
            None
        }
    }

    /// Raw status word, as software would read it from EAX.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Software-defined explicit-abort codes used by the runtime.
pub mod xabort_codes {
    /// The transaction saw the single-global fall-back lock held right after
    /// starting and self-aborted (Alg. 1 lines 11–12).
    pub const SGL_LOCKED: u8 = 0xA0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn started_sentinel() {
        let s = XStatus::started();
        assert!(s.is_started());
        assert!(!s.is_conflict());
        assert!(!s.is_capacity());
        assert!(!s.is_explicit());
        assert!(!s.is_other());
        assert_eq!(s.raw(), u32::MAX);
    }

    #[test]
    fn conflict_is_retryable() {
        let s = XStatus::conflict();
        assert!(s.is_conflict());
        assert!(s.may_retry());
        assert!(!s.is_capacity());
        assert!(!s.is_started());
    }

    #[test]
    fn capacity_is_not_retryable() {
        let s = XStatus::capacity();
        assert!(s.is_capacity());
        assert!(!s.may_retry());
        assert!(!s.is_conflict());
    }

    #[test]
    fn explicit_carries_code() {
        let s = XStatus::explicit(xabort_codes::SGL_LOCKED);
        assert!(s.is_explicit());
        assert_eq!(s.explicit_code(), Some(xabort_codes::SGL_LOCKED));
        assert!(!s.is_other());
    }

    #[test]
    fn other_has_no_cause() {
        let s = XStatus::other();
        assert!(s.is_other());
        assert!(!s.is_conflict());
        assert!(!s.is_capacity());
        assert!(!s.is_explicit());
        assert!(!s.may_retry());
        assert_eq!(s.explicit_code(), None);
    }

    #[test]
    fn non_explicit_has_no_code() {
        assert_eq!(XStatus::conflict().explicit_code(), None);
        assert_eq!(XStatus::capacity().explicit_code(), None);
    }
}
