//! Configuration of the modelled HTM: buffer geometry and cost model.

use seer_sim::Cycles;

/// Which side of a data conflict aborts.
///
/// Real TSX is *requester-wins*: the cache-coherence request of the
/// accessing CPU invalidates (or downgrades) the line in the other
/// transaction's tracked set, aborting the *other* transaction. The
/// alternative — the requester aborting itself when it touches a line a
/// running transaction owns — is how some proposed HTMs and most STM
/// designs behave; it is provided as the conflict-policy ablation flagged
/// in `DESIGN.md` §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictResolution {
    /// The accessing transaction survives; holders of the line abort
    /// (TSX behaviour).
    #[default]
    RequesterWins,
    /// The accessing transaction aborts itself; holders survive.
    RequesterAborts,
}

/// Geometry of the transactional buffers and the SMT-sharing rule.
///
/// Defaults model the paper's Haswell Xeon E3-1275: a 32 KiB, 8-way L1D with
/// 64-byte lines bounds the *write* set (64 sets × 8 ways); the *read* set
/// survives L1 eviction via the L2-backed tracking TSX implements, so it
/// gets a larger flat budget. When two hyper-threads of one physical core
/// both run transactions, they compete for the same L1/L2, which the model
/// expresses by dividing both budgets by the number of co-resident
/// transactions — the effect Seer's *core locks* exist to fight (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HtmConfig {
    /// Number of cache sets available to a transaction's write set.
    pub write_sets: usize,
    /// Associativity (ways) of each write-set cache set.
    pub write_ways: usize,
    /// Total cache-line budget for the read set.
    pub read_lines: usize,
    /// Whether SMT siblings running transactions share (and thus split)
    /// the capacity budgets. Disabling this isolates the capacity model in
    /// tests and ablations.
    pub smt_capacity_sharing: bool,
    /// Which side of a data conflict aborts.
    pub conflict_resolution: ConflictResolution,
}

impl Default for HtmConfig {
    fn default() -> Self {
        Self {
            write_sets: 64,
            write_ways: 8,
            read_lines: 4096,
            smt_capacity_sharing: true,
            conflict_resolution: ConflictResolution::RequesterWins,
        }
    }
}

impl HtmConfig {
    /// Effective write-set associativity with `co_resident` transactions
    /// active on the same physical core (including the subject itself).
    pub fn effective_ways(&self, co_resident: usize) -> usize {
        if self.smt_capacity_sharing {
            (self.write_ways / co_resident.max(1)).max(1)
        } else {
            self.write_ways
        }
    }

    /// Effective read-set budget with `co_resident` transactions active on
    /// the same physical core (including the subject itself).
    pub fn effective_read_lines(&self, co_resident: usize) -> usize {
        if self.smt_capacity_sharing {
            (self.read_lines / co_resident.max(1)).max(1)
        } else {
            self.read_lines
        }
    }
}

/// Latency model for the simulated machine, in cycles.
///
/// Values are in the range reported for Haswell TSX by Yoo et al. (SC'13)
/// and Diegues et al. (PACT'14): beginning/committing a transaction costs
/// tens of cycles, an abort costs a rollback plus restart penalty, and
/// atomic lock operations cost a cache-coherent RMW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of `xbegin` (checkpointing registers, entering speculation).
    pub xbegin: Cycles,
    /// Cost of `xend` (commit, making the write set visible).
    pub xend: Cycles,
    /// Penalty charged on abort (discarding the write set, restoring
    /// registers, branching to the abort handler).
    pub abort_penalty: Cycles,
    /// Cost of a compare-and-swap / lock acquisition attempt.
    pub cas: Cycles,
    /// Cost of releasing a lock (store + fence).
    pub lock_release: Cycles,
    /// Hand-off latency between a lock release and a queued waiter resuming.
    pub lock_handoff: Cycles,
    /// Polling interval while waiting on a lock the simulator cannot hand
    /// off directly (watcher wake-ups re-check conditions after this delay).
    pub spin_recheck: Cycles,
    /// Probability per cycle spent inside a transaction of an asynchronous
    /// abort (interrupt, page fault, ring transition) — surfaces as an
    /// `XStatus::other()` abort exactly as TSX reports them.
    pub async_abort_per_cycle: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            xbegin: 45,
            xend: 35,
            abort_penalty: 160,
            cas: 30,
            lock_release: 12,
            lock_handoff: 40,
            spin_recheck: 60,
            async_abort_per_cycle: 2e-8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_haswell() {
        let c = HtmConfig::default();
        assert_eq!(c.write_sets * c.write_ways, 512); // 32 KiB / 64 B
        assert!(c.read_lines > c.write_sets * c.write_ways);
    }

    #[test]
    fn smt_sharing_halves_budgets() {
        let c = HtmConfig::default();
        assert_eq!(c.effective_ways(1), 8);
        assert_eq!(c.effective_ways(2), 4);
        assert_eq!(c.effective_read_lines(2), 2048);
    }

    #[test]
    fn sharing_disabled_keeps_full_budget() {
        let c = HtmConfig {
            smt_capacity_sharing: false,
            ..HtmConfig::default()
        };
        assert_eq!(c.effective_ways(2), 8);
        assert_eq!(c.effective_read_lines(2), 4096);
    }

    #[test]
    fn budgets_never_reach_zero() {
        let c = HtmConfig::default();
        assert_eq!(c.effective_ways(100), 1);
        assert!(c.effective_read_lines(100_000) >= 1);
    }

    #[test]
    fn cost_model_is_plausible() {
        let m = CostModel::default();
        assert!(m.abort_penalty > m.xbegin);
        assert!(m.async_abort_per_cycle < 1e-6);
    }
}
