//! Incremental-vs-full inference equivalence (the tentpole invariant).
//!
//! The persistent [`InferenceEngine`] recomputes only dirty rows and
//! replays cached pair lists for the rest; its contract is that the
//! concatenated output is *order-exact identical* to a from-scratch
//! `infer_conflict_pairs_with` over the same statistics — at every round,
//! under any interleaving of registrations, decay/`merge_from` resyncs,
//! stats wipes, and threshold changes. These properties drive random
//! interleavings through the same dual-write scheme the scheduler uses
//! (per-thread tables + incremental merged view) and compare after every
//! single operation, so a dirty-row bookkeeping bug cannot hide behind a
//! later full resync.

use proptest::prelude::*;
use seer::inference::{infer_conflict_pairs_with, Thresholds, MIN_DISCRIMINATIVE_SIGMA};
use seer::stats::{MergedStats, ThreadStats};
use seer::InferenceEngine;

const THREADS: usize = 3;

/// One step of an interleaving, mirroring everything the scheduler can do
/// to its statistics between two inference rounds.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// REGISTER-COMMIT / REGISTER-ABORT: dual write into the owning
    /// thread's table and the merged view (dirties row `block`).
    Register { thread: usize, block: usize, partner: usize, commit: bool },
    /// Decay every per-thread table, then re-anchor the merged view with
    /// `merge_from` (dirties every row) — the scheduler's decay path.
    Decay,
    /// Stats amnesia (`SchedFault::WipeStats`): fresh tables, fresh
    /// all-dirty merged view.
    Wipe,
    /// Hill-climb / fault kick: change the thresholds the next round runs
    /// under (the engine must invalidate its cache by itself).
    KickThresholds(u8),
}

fn arb_op(blocks: usize) -> impl Strategy<Value = Op> {
    (0usize..12, 0usize..THREADS, 0usize..blocks, 0usize..blocks).prop_map(
        |(tag, thread, block, partner)| match tag {
            0 => Op::Decay,
            1 => Op::Wipe,
            2 => Op::KickThresholds((thread + block) as u8 % 3),
            t => Op::Register { thread, block, partner, commit: t % 3 == 0 },
        },
    )
}

fn kicked(tag: u8) -> Thresholds {
    let base = Thresholds::default();
    match tag {
        0 => base,
        1 => Thresholds { th1: (base.th1 * 0.5).max(0.05), ..base },
        _ => Thresholds { th2: (base.th2 * 1.25).min(0.95), ..base },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole equivalence: after EVERY operation, an engine round
    /// over the merged view equals the full recompute, order included.
    #[test]
    fn incremental_round_equals_full_recompute_at_every_round(
        blocks in 2usize..12,
        ops in prop::collection::vec(arb_op(12), 1..70),
    ) {
        let mut per_thread: Vec<ThreadStats> =
            (0..THREADS).map(|_| ThreadStats::new(blocks)).collect();
        let mut merged = MergedStats::new(blocks);
        let mut engine = InferenceEngine::new();
        let mut th = Thresholds::default();

        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Register { thread, block, partner, commit } => {
                    let block = block % blocks;
                    let partner = partner % blocks;
                    if commit {
                        per_thread[thread].register_commit(block, [partner].into_iter());
                        merged.add_commit(block, [partner].into_iter());
                    } else {
                        per_thread[thread].register_abort(block, [partner].into_iter());
                        merged.add_abort(block, [partner].into_iter());
                    }
                }
                Op::Decay => {
                    for t in &mut per_thread {
                        t.decay();
                    }
                    merged.merge_from(per_thread.iter());
                }
                Op::Wipe => {
                    for t in &mut per_thread {
                        *t = ThreadStats::new(blocks);
                    }
                    merged = MergedStats::new(blocks);
                }
                Op::KickThresholds(tag) => th = kicked(tag),
            }

            // Reference first (pure read), then the engine round (which
            // clears dirty bits); both see identical statistics.
            let reference = infer_conflict_pairs_with(&merged, th, MIN_DISCRIMINATIVE_SIGMA);
            let incremental = engine.round(&mut merged, th, MIN_DISCRIMINATIVE_SIGMA);
            prop_assert_eq!(
                incremental, &reference[..],
                "divergence after step {} ({:?})", step, op
            );
        }
    }

    /// Decay + `merge_from` must leave no stale cached row behind even
    /// when only SOME rows changed numerically: integer halving touches
    /// rows the dual write never dirtied, so `merge_from` dirtying
    /// everything is load-bearing. This property would fail if
    /// `merge_from` only dirtied rows whose totals moved.
    #[test]
    fn decay_resync_invalidates_every_cached_row(
        blocks in 2usize..10,
        seed_ops in prop::collection::vec(arb_op(10), 10..50),
    ) {
        let mut per_thread: Vec<ThreadStats> =
            (0..THREADS).map(|_| ThreadStats::new(blocks)).collect();
        let mut merged = MergedStats::new(blocks);
        let mut engine = InferenceEngine::new();
        let th = Thresholds::default();

        // Build up arbitrary state (registrations only) and prime the cache.
        for op in &seed_ops {
            if let Op::Register { thread, block, partner, commit } = *op {
                let (block, partner) = (block % blocks, partner % blocks);
                if commit {
                    per_thread[thread].register_commit(block, [partner].into_iter());
                    merged.add_commit(block, [partner].into_iter());
                } else {
                    per_thread[thread].register_abort(block, [partner].into_iter());
                    merged.add_abort(block, [partner].into_iter());
                }
            }
        }
        engine.round(&mut merged, th, MIN_DISCRIMINATIVE_SIGMA);
        for x in 0..blocks {
            prop_assert!(!merged.is_dirty(x), "row {} dirty after a round", x);
        }

        for t in &mut per_thread {
            t.decay();
        }
        merged.merge_from(per_thread.iter());
        for x in 0..blocks {
            prop_assert!(merged.is_dirty(x), "decay resync left row {} clean", x);
        }

        let reference = infer_conflict_pairs_with(&merged, th, MIN_DISCRIMINATIVE_SIGMA);
        let incremental = engine.round(&mut merged, th, MIN_DISCRIMINATIVE_SIGMA);
        prop_assert_eq!(incremental, &reference[..]);
    }
}

/// Dirty-row bookkeeping across decay, pinned as a deterministic unit
/// test (the satellite's explicit ask, independent of proptest shrinking).
#[test]
fn dirty_row_bookkeeping_across_decay() {
    let blocks = 6;
    let mut thread = ThreadStats::new(blocks);
    let mut merged = MergedStats::new(blocks);
    let mut engine = InferenceEngine::new();
    let th = Thresholds::default();

    thread.register_abort(2, [4].into_iter());
    merged.add_abort(2, [4].into_iter());
    engine.round(&mut merged, th, MIN_DISCRIMINATIVE_SIGMA);
    assert!((0..blocks).all(|x| !merged.is_dirty(x)), "round must clear dirt");

    // A registration dirties exactly its own row.
    thread.register_commit(3, [1].into_iter());
    merged.add_commit(3, [1].into_iter());
    assert!(merged.is_dirty(3));
    assert!((0..blocks).filter(|&x| merged.is_dirty(x)).count() == 1);

    // Decay + resync dirties everything, including untouched rows.
    thread.decay();
    merged.merge_from([&thread].into_iter());
    assert!((0..blocks).all(|x| merged.is_dirty(x)), "resync must dirty all rows");

    // And the next round both clears the dirt and matches the reference.
    let reference = infer_conflict_pairs_with(&merged, th, MIN_DISCRIMINATIVE_SIGMA);
    let incremental = engine.round(&mut merged, th, MIN_DISCRIMINATIVE_SIGMA);
    assert_eq!(incremental, &reference[..]);
    assert!((0..blocks).all(|x| !merged.is_dirty(x)));
}
