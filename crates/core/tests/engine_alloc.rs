//! Zero steady-state allocation audit for the inference round
//! (`crates/runtime/tests/scratch_reuse.rs` style, one layer up).
//!
//! PR 6 removed allocations from the simulation kernel's hot loops; this
//! audit pins the same discipline onto the scheduler's periodic update.
//! A counting global allocator measures three steady states after warm-up:
//!
//! * engine, clean round — nothing dirty, the round is pure cached
//!   assembly and must allocate nothing;
//! * engine, sparse-dirty rounds — a converged cyclic update stream keeps
//!   ≤ 10% of rows dirty per round; recomputation reuses the engine's
//!   per-row scratch and must allocate nothing;
//! * full `Seer` scheduler — event registration (`on_tx_start` /
//!   `on_htm_commit` / `on_abort`) plus `force_update` rounds, covering
//!   the merged-stats dual write, the engine round, and the in-place
//!   `LockTable::rebuild`.
//!
//! Everything here is deterministic (fixed streams, no hashing), so the
//! assertions are exact, not statistical.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use seer::inference::{Thresholds, MIN_DISCRIMINATIVE_SIGMA};
use seer::stats::MergedStats;
use seer::{InferenceEngine, Seer, SeerConfig};
use seer_htm::XStatus;
use seer_runtime::{LockBank, NullTraceSink, SchedEnv, Scheduler};
use seer_sim::{SimRng, Topology};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Allocation count delta across `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// A populated stats matrix (same xorshift scheme as the engine's own
/// unit tests: deterministic, contended enough to emit pairs).
fn populated(blocks: usize, seed: u64) -> MergedStats {
    let mut state = seed | 1;
    let mut next = move |bound: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound as u64) as usize
    };
    let mut m = MergedStats::new(blocks);
    for _ in 0..blocks * 24 {
        let x = next(blocks);
        // Partners concentrate in a small neighborhood of x: at large n a
        // uniform partner spreads the conjunctive mass so thin that no
        // pair ever crosses Th1.
        let y = (x + 1 + next(3)) % blocks;
        if next(3) == 0 {
            m.add_commit(x, [y].into_iter());
        } else {
            m.add_abort(x, [y].into_iter());
        }
    }
    m
}

/// One cyclic sparse update: dirties `dirty` fixed rows (≤ 10% of `n`)
/// with abort registrations against a fixed partner set. Deterministic
/// and convergent — after warm-up the emitted pair set is stable, so a
/// steady-state round touches no new capacity.
fn apply_sparse(stats: &mut MergedStats, n: usize, dirty: usize, round: usize) {
    for i in 0..dirty {
        let x = (i * (n / dirty)) % n;
        let y = (x + 1 + (round + i) % 3) % n;
        stats.add_abort(x, [y].into_iter());
    }
}

/// All three audits share the binary-wide allocation counter, so they run
/// as one sequential test rather than three racing ones.
#[test]
fn steady_state_rounds_do_not_allocate() {
    let th = Thresholds::default();
    let min_sigma = MIN_DISCRIMINATIVE_SIGMA;

    // --- engine, clean rounds ------------------------------------------
    let n = 64;
    let mut stats = populated(n, 0x5EED);
    let mut engine = InferenceEngine::new();
    let baseline = engine.round(&mut stats, th, min_sigma).len();
    assert!(baseline > 0, "audit stats must emit pairs");
    let clean = allocations_during(|| {
        for _ in 0..50 {
            std::hint::black_box(engine.round(&mut stats, th, min_sigma));
        }
    });
    assert_eq!(clean, 0, "clean rounds must be pure cached assembly");

    // --- engine, sparse-dirty rounds -----------------------------------
    // Warm-up: run the cyclic stream long enough that every row's pair
    // list and the concatenation buffer have reached their steady
    // capacities (the stream's probability ratios converge monotonically).
    let dirty = n / 10;
    for round in 0..300 {
        apply_sparse(&mut stats, n, dirty, round);
        engine.round(&mut stats, th, min_sigma);
    }
    let sparse = allocations_during(|| {
        for round in 300..360 {
            apply_sparse(&mut stats, n, dirty, round);
            std::hint::black_box(engine.round(&mut stats, th, min_sigma));
        }
    });
    assert_eq!(sparse, 0, "sparse-dirty rounds must reuse engine scratch");

    // --- full scheduler: events + force_update -------------------------
    let threads = 4;
    let blocks = 16;
    let topology = Topology::haswell_e3();
    let locks = LockBank::new(topology.physical_cores(), blocks);
    let mut rng = SimRng::new(7);
    let mut sink = NullTraceSink;
    let mut env = SchedEnv {
        now: 0,
        locks: &locks,
        topology,
        rng: &mut rng,
        trace: &mut sink,
    };
    let mut seer = Seer::new(SeerConfig::full(), threads, blocks);

    // One synthetic event batch: all threads announce, half commit, half
    // abort (attempts_left > 1, so the abort path returns no gates and
    // acquires nothing).
    let batch = |seer: &mut Seer, env: &mut SchedEnv<'_>, round: usize| {
        for t in 0..threads {
            seer.on_tx_start(t, (t + round) % blocks, env);
        }
        for t in 0..threads {
            let block = (t + round) % blocks;
            if t % 2 == 0 {
                seer.on_htm_commit(t, block, env);
            } else {
                seer.on_abort(t, block, XStatus::conflict(), 3, env);
                seer.on_htm_commit(t, block, env);
            }
        }
    };

    for round in 0..100 {
        batch(&mut seer, &mut env, round);
        seer.force_update();
    }
    let scheduler = allocations_during(|| {
        for round in 100..140 {
            batch(&mut seer, &mut env, round);
            seer.force_update();
        }
    });
    assert_eq!(
        scheduler, 0,
        "steady-state Seer rounds (events + update) must not allocate"
    );
}
