//! Adaptivity under workload phase changes: the decay extension must let
//! Seer *forget* conflict relations that stopped occurring, where the
//! accumulate-forever default keeps stale locks in force.

use seer::{Seer, SeerConfig};
use seer_htm::AccessKind;
use seer_runtime::{run, Access, DriverConfig, TxRequest, Workload};
use seer_sim::{SimRng, ThreadId};

/// A two-phase program: in phase A, blocks 0 and 1 hammer one tiny region
/// (heavy conflicts); in phase B the same blocks touch disjoint private
/// data (zero conflicts). The conflict relation (0,1) is real in phase A
/// and obsolete in phase B.
struct PhaseChange {
    remaining: Vec<usize>,
    phase_a: usize,
}

impl PhaseChange {
    fn new(threads: usize, per_thread: usize, phase_a: usize) -> Self {
        Self {
            remaining: vec![per_thread; threads],
            phase_a,
        }
    }
}

impl Workload for PhaseChange {
    fn name(&self) -> &str {
        "phase-change"
    }
    fn num_blocks(&self) -> usize {
        2
    }
    fn next(&mut self, thread: ThreadId, rng: &mut SimRng) -> Option<TxRequest> {
        let left = self.remaining[thread];
        if left == 0 {
            return None;
        }
        self.remaining[thread] -= 1;
        let done = self.remaining.iter().map(|r| 400 - r).sum::<usize>();
        let hot_phase = done < self.phase_a * self.remaining.len();
        let block = (rng.below(2)) as usize;
        let mut accesses = Vec::new();
        let mut offset = 0u64;
        for i in 0..10u64 {
            offset += rng.range_inclusive(6, 12);
            let line = if hot_phase && i < 3 {
                // Shared hot region: 4 lines, written.
                rng.below(4)
            } else {
                // Disjoint per-thread data.
                (1 << 30) + thread as u64 * (1 << 20) + rng.below(1 << 10)
            };
            let kind = if hot_phase && i < 3 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            accesses.push(Access { line, kind, offset });
        }
        Some(TxRequest {
            block,
            accesses,
            duration: offset + 10,
            think: rng.range_inclusive(40, 120),
        })
    }
    fn regenerate(&mut self, _thread: ThreadId, _req: &mut TxRequest, _rng: &mut SimRng) {
        // Keep the trace; phase membership was decided at issue time.
    }
}

fn run_phase_change(cfg: SeerConfig) -> Seer {
    let threads = 8;
    let mut w = PhaseChange::new(threads, 400, 80);
    let mut sched = Seer::new(cfg, threads, 2);
    let mut dcfg = DriverConfig::paper_machine(threads, 3);
    dcfg.costs.async_abort_per_cycle = 0.0;
    // Frequent maintenance so the (short) cold phase sees several updates.
    dcfg.periodic_tick = Some(50_000);
    let m = run(&mut w, &mut sched, &dcfg);
    assert_eq!(m.commits, 3200);
    sched
}

#[test]
fn without_decay_stale_conflicts_persist() {
    let mut base = SeerConfig::full();
    base.hill_climbing = false;
    let mut sched = run_phase_change(base);
    sched.force_update();
    // The hot phase dominated the accumulated statistics forever.
    assert!(
        !sched.lock_table().is_empty(),
        "accumulate-forever Seer should still hold the phase-A relation"
    );
}

#[test]
fn with_decay_stale_conflicts_fade() {
    let mut cfg = SeerConfig::with_decay(1);
    cfg.hill_climbing = false;
    cfg.update_period_execs = 150;
    let mut sched = run_phase_change(cfg);
    sched.force_update();
    assert!(
        sched.lock_table().is_empty(),
        "decayed Seer should have forgotten the phase-A relation: {:?}",
        (0..2).map(|x| sched.lock_table().row(x).to_vec()).collect::<Vec<_>>()
    );
}
