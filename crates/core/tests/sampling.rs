//! Tests of the probabilistic-sampling extension (paper §6 future work):
//! sampled statistics must stay unbiased enough to infer the same conflict
//! relations, at a fraction of the monitoring cost.

use seer::{Seer, SeerConfig};
use seer_runtime::{run, DriverConfig, Workload};
use seer_stamp::Benchmark;

fn run_with_sampling(p: f64, txs: usize) -> (Seer, seer_runtime::RunMetrics) {
    let threads = 8;
    let mut w = Benchmark::KmeansHigh.instantiate(threads, txs);
    let blocks = w.num_blocks();
    let mut cfg = SeerConfig::with_sampling(p);
    cfg.hill_climbing = false; // isolate the sampling effect
    let mut sched = Seer::new(cfg, threads, blocks);
    let m = run(&mut w, &mut sched, &DriverConfig::paper_machine(threads, 13));
    (sched, m)
}

#[test]
fn quarter_sampling_still_finds_the_hot_pair() {
    let (sched, m) = run_with_sampling(0.25, 600);
    assert!(m.commits > 0);
    assert!(
        sched.lock_table().row(0).contains(&0),
        "sampled inference missed the center-update self-conflict: {:?}",
        sched.lock_table().row(0)
    );
}

#[test]
fn sampling_reduces_registration_volume_proportionally() {
    let (full, _) = run_with_sampling(1.0, 300);
    let (quarter, _) = run_with_sampling(0.25, 300);
    let full_regs = full.counters().commits_registered + full.counters().aborts_registered;
    let quarter_regs =
        quarter.counters().commits_registered + quarter.counters().aborts_registered;
    // Not exactly 1/4 (the runs diverge dynamically), but far fewer.
    assert!(
        (quarter_regs as f64) < 0.45 * full_regs as f64,
        "sampling 0.25 registered {quarter_regs} of {full_regs}"
    );
    assert!(quarter_regs > 0);
}

#[test]
fn zero_sampling_learns_nothing_and_locks_nothing() {
    let (sched, m) = run_with_sampling(0.0, 200);
    assert!(m.commits > 0);
    assert!(sched.lock_table().is_empty());
    assert_eq!(sched.counters().commits_registered, 0);
    assert_eq!(sched.counters().aborts_registered, 0);
}

#[test]
fn sampled_probabilities_remain_close_to_full() {
    use seer::inference::conditional_abort_probability;
    let (mut full, _) = run_with_sampling(1.0, 800);
    let (mut quarter, _) = run_with_sampling(0.25, 800);
    full.force_update();
    quarter.force_update();
    let pf = conditional_abort_probability(full.merged_stats(), 0, 0);
    let pq = conditional_abort_probability(quarter.merged_stats(), 0, 0);
    assert!(
        (pf - pq).abs() < 0.15,
        "sampling skewed P(0 aborts | 0 active): full {pf:.3} vs sampled {pq:.3}"
    );
}
