//! Property-based edge-case coverage for the Gaussian percentile machinery
//! behind the Th2 cut (degenerate rows, extreme percentiles).

use proptest::prelude::*;
use seer::gaussian::{gaussian_percentile, mean_variance, std_normal_cdf, std_normal_quantile};

#[test]
fn empty_row_yields_the_degenerate_gaussian() {
    // An all-idle row (no conditional probabilities at all) must not poison
    // the cut-off: N(0, 0) at any percentile is 0.
    let (mean, variance) = mean_variance(&[]);
    assert_eq!((mean, variance), (0.0, 0.0));
    assert_eq!(gaussian_percentile(mean, variance, 0.8), 0.0);
    assert_eq!(gaussian_percentile(mean, variance, 0.0), 0.0);
    assert_eq!(gaussian_percentile(mean, variance, 1.0), 0.0);
}

proptest! {
    #[test]
    fn zero_variance_returns_the_mean_for_any_percentile(
        mean in -10.0f64..10.0,
        percentile in 0.0f64..1.0,
    ) {
        prop_assert_eq!(gaussian_percentile(mean, 0.0, percentile), mean);
        // Negative variance is nonsensical input; the convention is the
        // same degenerate answer rather than NaN.
        prop_assert_eq!(gaussian_percentile(mean, -1.0, percentile), mean);
    }

    #[test]
    fn single_sample_rows_degenerate_to_that_sample(
        sample in 0.0f64..1.0,
        percentile in 0.0f64..1.0,
    ) {
        let (mean, variance) = mean_variance(&[sample]);
        prop_assert_eq!(mean, sample);
        prop_assert_eq!(variance, 0.0);
        prop_assert_eq!(gaussian_percentile(mean, variance, percentile), sample);
    }

    #[test]
    fn constant_rows_have_zero_variance(value in 0.0f64..1.0, len in 1usize..32) {
        let row = vec![value; len];
        let (mean, variance) = mean_variance(&row);
        prop_assert!((mean - value).abs() < 1e-12);
        prop_assert!(variance.abs() < 1e-18);
        prop_assert!((gaussian_percentile(mean, variance, 0.99) - value).abs() < 1e-12);
    }

    #[test]
    fn extreme_th2_percentiles_stay_finite_and_ordered(
        mean in 0.0f64..1.0,
        sigma in 1e-4f64..0.5,
        percentile in 0.5f64..1.0,
    ) {
        // Th2 = 0 and Th2 = 1 are representable climber states: the cut
        // must clamp to a finite value, not hit the quantile's open-interval
        // panic, and stay monotone in the percentile.
        let variance = sigma * sigma;
        let floor = gaussian_percentile(mean, variance, 0.0);
        let cut = gaussian_percentile(mean, variance, percentile);
        let ceil = gaussian_percentile(mean, variance, 1.0);
        prop_assert!(floor.is_finite() && cut.is_finite() && ceil.is_finite());
        prop_assert!(floor <= cut && cut <= ceil);
        // At ~6 sigma from the mean, the clamped extremes bracket
        // everything a probability row can contain.
        prop_assert!(floor < mean - 5.0 * sigma);
        prop_assert!(ceil > mean + 5.0 * sigma);
    }

    #[test]
    fn quantile_roundtrips_through_the_cdf(p in 0.001f64..0.999) {
        let z = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(z) - p).abs() < 1e-6);
    }
}
