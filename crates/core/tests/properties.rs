//! Property-based tests of Seer's inference machinery.

use proptest::prelude::*;
use seer::gaussian::{gaussian_percentile, mean_variance, std_normal_cdf, std_normal_quantile};
use seer::inference::{
    conditional_abort_probability, conjunctive_abort_probability, infer_conflict_pairs, Thresholds,
};
use seer::stats::{MergedStats, ThreadStats};
use seer::{HillClimber, LockTable};
use seer_sim::SimRng;

fn arb_stats(blocks: usize) -> impl Strategy<Value = MergedStats> {
    prop::collection::vec((0u32..200, 0u32..200), blocks * blocks).prop_map(move |cells| {
        let mut t = ThreadStats::new(blocks);
        for (idx, (aborts, commits)) in cells.into_iter().enumerate() {
            let x = idx / blocks;
            let y = idx % blocks;
            for _ in 0..aborts {
                t.register_abort(x, [y].into_iter());
            }
            for _ in 0..commits {
                t.register_commit(x, [y].into_iter());
            }
        }
        let mut m = MergedStats::new(blocks);
        m.merge_from([&t].into_iter());
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both probability definitions stay in [0, 1] under indicator-counted
    /// statistics, for any statistics content.
    #[test]
    fn probabilities_are_probabilities(stats in arb_stats(4)) {
        for x in 0..4 {
            for y in 0..4 {
                let cond = conditional_abort_probability(&stats, x, y);
                let conj = conjunctive_abort_probability(&stats, x, y);
                prop_assert!((0.0..=1.0).contains(&cond), "cond {cond}");
                prop_assert!((0.0..=1.0).contains(&conj), "conj {conj}");
                // Conjunctive never exceeds the marginal evidence.
                prop_assert!(conj <= 1.0);
            }
        }
    }

    /// Raising Th1 never adds pairs (monotone filtering).
    #[test]
    fn th1_is_monotone(stats in arb_stats(4), lo in 0.0f64..0.5, delta in 0.0f64..0.5) {
        let th_lo = Thresholds { th1: lo, th2: 0.5 };
        let th_hi = Thresholds { th1: lo + delta, th2: 0.5 };
        let pairs_lo = infer_conflict_pairs(&stats, th_lo);
        let pairs_hi = infer_conflict_pairs(&stats, th_hi);
        for p in &pairs_hi {
            prop_assert!(pairs_lo.contains(p), "pair {p:?} appeared when Th1 rose");
        }
    }

    /// The lock table built from any pair set is symmetric, sorted and
    /// deduplicated.
    #[test]
    fn lock_table_rows_sorted_symmetric(
        pairs in prop::collection::vec((0usize..6, 0usize..6), 0..30)
    ) {
        let mut t = LockTable::new(6);
        t.rebuild(&pairs);
        for x in 0..6 {
            let row = t.row(x);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {x} unsorted: {row:?}");
            for &y in row {
                prop_assert!(t.row(y).contains(&x), "asymmetric: {x} -> {y}");
            }
        }
    }

    /// Gaussian quantile inverts the CDF across the useful range.
    #[test]
    fn quantile_cdf_roundtrip(p in 0.001f64..0.999) {
        let z = std_normal_quantile(p);
        prop_assert!((std_normal_cdf(z) - p).abs() < 1e-5);
    }

    /// Percentiles are monotone in the percentile and bracket the mean.
    #[test]
    fn percentile_monotone(mean in -5.0f64..5.0, var in 0.0001f64..4.0,
                           a in 0.01f64..0.98, d in 0.001f64..0.01) {
        let lo = gaussian_percentile(mean, var, a);
        let hi = gaussian_percentile(mean, var, a + d);
        prop_assert!(hi >= lo);
        prop_assert!(gaussian_percentile(mean, var, 0.5) - mean < 1e-9);
    }

    /// Mean/variance agree with the naive two-pass computation.
    #[test]
    fn mean_variance_matches_naive(values in prop::collection::vec(-100.0f64..100.0, 1..50)) {
        let (m, v) = mean_variance(&values);
        let n = values.len() as f64;
        let nm: f64 = values.iter().sum::<f64>() / n;
        let nv: f64 = values.iter().map(|x| (x - nm).powi(2)).sum::<f64>() / n;
        prop_assert!((m - nm).abs() < 1e-9);
        prop_assert!((v - nv).abs() < 1e-6);
    }

    /// The hill climber's thresholds remain in the unit square under any
    /// throughput feedback sequence.
    #[test]
    fn climber_stays_in_bounds(
        feedback in prop::collection::vec(0.0f64..100.0, 1..200),
        seed in any::<u64>(),
    ) {
        let mut h = HillClimber::new();
        let mut rng = SimRng::new(seed);
        for f in feedback {
            let t = h.observe(f, &mut rng);
            prop_assert!((0.0..=1.0).contains(&t.th1));
            prop_assert!((0.0..=1.0).contains(&t.th2));
        }
    }
}
