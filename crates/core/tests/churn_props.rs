//! Thread-churn properties (scenario engine, DESIGN.md §11): a thread
//! that parks mid-run must be invisible to Seer's shared structures — its
//! cleared `activeTxs` slot never surfaces in a scan, and the statistics
//! merge is a pure function of the per-thread matrices, indifferent to
//! merge order, re-merging, or padding with deregistered (zeroed) slots.

use proptest::prelude::*;
use seer::active::ActiveTxs;
use seer::stats::{MergedStats, ThreadStats};

const BLOCKS: usize = 4;

/// One step of a churn interleaving, encoded as plain integers so the
/// strategy stays a simple tuple vector.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// `register_commit` / `register_abort` on a thread (if unparked).
    Register { thread: usize, block: usize, commit: bool, partner: usize },
    /// Park: clear the announcement slot, freeze the private stats.
    Park(usize),
    /// Unpark: the thread announces again and resumes registering.
    Unpark { thread: usize, block: usize },
}

fn arb_op(threads: usize) -> impl Strategy<Value = Op> {
    (0usize..6, 0usize..threads, 0usize..BLOCKS, 0usize..BLOCKS).prop_map(
        |(tag, thread, block, partner)| match tag {
            0 => Op::Park(thread),
            1 => Op::Unpark { thread, block },
            t => Op::Register {
                thread,
                block,
                commit: t % 2 == 0,
                partner,
            },
        },
    )
}

/// Replays `ops` over `threads` slots, maintaining park state, and checks
/// the scan/merge invariants after every step.
fn replay(threads: usize, ops: &[Op]) -> (Vec<ThreadStats>, ActiveTxs, Vec<bool>) {
    let mut stats: Vec<ThreadStats> = (0..threads).map(|_| ThreadStats::new(BLOCKS)).collect();
    let mut active = ActiveTxs::new(threads);
    let mut parked = vec![false; threads];
    for &op in ops {
        match op {
            Op::Park(t) => {
                parked[t] = true;
                active.clear(t);
            }
            Op::Unpark { thread, block } => {
                parked[thread] = false;
                active.announce(thread, block);
            }
            Op::Register { thread, block, commit, partner } => {
                if parked[thread] {
                    continue;
                }
                active.announce(thread, block);
                let concurrent: Vec<usize> = active.scan_others(thread).collect();
                if commit {
                    stats[thread].register_commit(block, concurrent.into_iter());
                } else {
                    stats[thread].register_abort(block, concurrent.into_iter());
                }
                let _ = partner;
            }
        }
    }
    (stats, active, parked)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A parked thread's slot is ignored by the activeTxs scan: no scan
    /// ever yields a block for a parked thread or for the scanner itself,
    /// and the scan agrees with a by-hand reference over the slots.
    #[test]
    fn parked_slots_never_surface_in_scans(
        threads in 2usize..8,
        ops in prop::collection::vec(arb_op(8), 1..60),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Park(t) => Op::Park(t % threads),
                Op::Unpark { thread, block } => Op::Unpark { thread: thread % threads, block },
                Op::Register { thread, block, commit, partner } => {
                    Op::Register { thread: thread % threads, block, commit, partner }
                }
            })
            .collect();
        let (_, active, parked) = replay(threads, &ops);
        for (t, &is_parked) in parked.iter().enumerate() {
            prop_assert!(
                !is_parked || active.get(t).is_none(),
                "thread {t} parked but still announced"
            );
        }
        for scanner in 0..threads {
            let seen: Vec<usize> = active.scan_others(scanner).collect();
            let reference: Vec<usize> = (0..threads)
                .filter(|&t| t != scanner && !parked[t])
                .filter_map(|t| active.get(t))
                .collect();
            prop_assert_eq!(seen, reference, "scanner {}", scanner);
        }
    }

    /// Churn never corrupts the merged digest: the merge is order-blind,
    /// idempotent under re-merging, and padding with a deregistered
    /// thread's zeroed matrices is a no-op.
    #[test]
    fn merged_digest_is_a_pure_function_of_thread_stats(
        threads in 2usize..8,
        ops in prop::collection::vec(arb_op(8), 1..60),
    ) {
        let ops: Vec<Op> = ops
            .into_iter()
            .map(|op| match op {
                Op::Park(t) => Op::Park(t % threads),
                Op::Unpark { thread, block } => Op::Unpark { thread: thread % threads, block },
                Op::Register { thread, block, commit, partner } => {
                    Op::Register { thread: thread % threads, block, commit, partner }
                }
            })
            .collect();
        let (stats, _, _) = replay(threads, &ops);

        let mut forward = MergedStats::new(BLOCKS);
        forward.merge_from(stats.iter());
        let digest = forward.digest();

        // Order-blind: merging the per-thread matrices reversed.
        let mut backward = MergedStats::new(BLOCKS);
        backward.merge_from(stats.iter().rev());
        prop_assert_eq!(backward.digest(), digest);

        // Idempotent: a re-merge reads the same inputs, not stale sums.
        forward.merge_from(stats.iter());
        prop_assert_eq!(forward.digest(), digest);

        // A deregistered thread contributes a zeroed matrix — padding the
        // merge with one (or several) must not move the digest.
        let ghost = ThreadStats::new(BLOCKS);
        let mut padded = MergedStats::new(BLOCKS);
        padded.merge_from(stats.iter().chain([&ghost, &ghost]));
        prop_assert_eq!(padded.digest(), digest);

        // And the totals agree with an independent scalar sum.
        let expected: u64 = (0..BLOCKS)
            .map(|x| stats.iter().map(|s| s.executions(x)).sum::<u64>())
            .sum();
        prop_assert_eq!(forward.total_executions(), expected);
    }
}
