//! Stochastic hill climbing of the inference thresholds (paper §4).
//!
//! Seer self-tunes `Th1` and `Th2` with "a simple and lightweight
//! bi-dimensional stochastic hill-climbing search, which exploits the
//! feedback of the TM performance (throughput …) to guide the search in
//! the parameter's space \[0,1\]×\[0,1\]", performing "with a small probability
//! p … random jumps in the parameters' space to avoid getting stuck in
//! local minima", with `p = 0.1%` and initial values `Th1 = 0.3`,
//! `Th2 = 0.8`.
//!
//! The climber is evaluated in rounds: the runtime reports the throughput
//! achieved under the *current* thresholds; the climber accepts the move if
//! throughput improved, reverts it otherwise, and proposes the next
//! candidate by perturbing one dimension (or jumping randomly).

use seer_sim::SimRng;

use crate::inference::Thresholds;

/// Stochastic hill climber over the `(Th1, Th2)` unit square.
#[derive(Debug, Clone)]
pub struct HillClimber {
    current: Thresholds,
    previous: Thresholds,
    last_throughput: f64,
    step: f64,
    jump_probability: f64,
    evaluations: u64,
    has_baseline: bool,
}

impl HillClimber {
    /// A climber starting from the paper's initial thresholds with the
    /// paper's jump probability (0.1%) and a default step of 0.05.
    pub fn new() -> Self {
        Self::with_params(Thresholds::default(), 0.1, 0.001)
    }

    /// Fully parameterized constructor.
    ///
    /// # Panics
    /// If `step` is not in `(0, 1]` or `jump_probability` not in `[0, 1]`.
    pub fn with_params(initial: Thresholds, step: f64, jump_probability: f64) -> Self {
        assert!(step > 0.0 && step <= 1.0, "step must be in (0,1]");
        assert!(
            (0.0..=1.0).contains(&jump_probability),
            "jump probability in [0,1]"
        );
        let initial = initial.clamped();
        Self {
            current: initial,
            previous: initial,
            last_throughput: 0.0,
            step,
            jump_probability,
            evaluations: 0,
            has_baseline: false,
        }
    }

    /// Thresholds the runtime should currently use.
    pub fn thresholds(&self) -> Thresholds {
        self.current
    }

    /// Number of completed evaluations.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Re-seats the search at `thresholds` and discards the baseline, so
    /// the next [`HillClimber::observe`] establishes a *fresh* reference
    /// window instead of judging the new point against the throughput
    /// measured under the pre-nudge thresholds.
    ///
    /// This is the correct response to an *external* threshold change
    /// (the scenario injector's threshold kick, or any operator override):
    /// without it, the first post-kick observation is compared against a
    /// stale baseline and — if it happens to read lower — "reverted" to
    /// the pre-kick point the caller explicitly moved away from.
    pub fn nudge(&mut self, thresholds: Thresholds) {
        let thresholds = thresholds.clamped();
        self.current = thresholds;
        self.previous = thresholds;
        self.has_baseline = false;
    }

    /// Reports the `throughput` (committed transactions per cycle — any
    /// consistent unit works) measured under the current thresholds, and
    /// moves the search. Returns the thresholds to use next.
    pub fn observe(&mut self, throughput: f64, rng: &mut SimRng) -> Thresholds {
        self.evaluations += 1;
        if !self.has_baseline {
            // First measurement establishes the baseline for the initial
            // point; no accept/revert decision yet.
            self.has_baseline = true;
        } else if throughput >= self.last_throughput {
            // The last move helped (or at least did not hurt relative to
            // the previous window): keep it. Comparing consecutive windows
            // rather than a historical best keeps the search working when
            // the workload's base throughput drifts over time.
            self.previous = self.current;
        } else {
            // The last move hurt: revert.
            self.current = self.previous;
        }
        self.last_throughput = throughput;
        self.propose(rng);
        self.current
    }

    fn propose(&mut self, rng: &mut SimRng) {
        self.previous = self.current;
        if rng.chance(self.jump_probability) {
            self.current = Thresholds {
                th1: rng.unit(),
                th2: rng.unit(),
            };
            return;
        }
        let delta = if rng.chance(0.5) { self.step } else { -self.step };
        let mut next = self.current;
        if rng.chance(0.5) {
            next.th1 += delta;
        } else {
            next.th2 += delta;
        }
        self.current = next.clamped();
    }
}

impl Default for HillClimber {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_paper_defaults() {
        let h = HillClimber::new();
        assert_eq!(h.thresholds(), Thresholds { th1: 0.3, th2: 0.8 });
        assert_eq!(h.evaluations(), 0);
    }

    #[test]
    fn thresholds_stay_in_unit_square() {
        let mut h = HillClimber::with_params(Thresholds { th1: 0.0, th2: 1.0 }, 0.2, 0.05);
        let mut rng = SimRng::new(3);
        for i in 0..500 {
            let t = h.observe(i as f64, &mut rng);
            assert!((0.0..=1.0).contains(&t.th1), "th1 escaped: {}", t.th1);
            assert!((0.0..=1.0).contains(&t.th2), "th2 escaped: {}", t.th2);
        }
        assert_eq!(h.evaluations(), 500);
    }

    #[test]
    fn reverts_harmful_moves() {
        let mut h = HillClimber::with_params(Thresholds::default(), 0.1, 0.0);
        let mut rng = SimRng::new(7);
        // Baseline at high throughput.
        h.observe(100.0, &mut rng);
        let good = h.previous; // the accepted point the proposal starts from
        // The next window is much worse: the move is reverted.
        h.observe(1.0, &mut rng);
        assert_eq!(h.previous, good, "harmful move was not reverted");
    }

    #[test]
    fn climbs_towards_better_throughput() {
        // Throughput landscape: peak at th1 = 1.0 (monotone in th1).
        let mut h = HillClimber::with_params(Thresholds { th1: 0.2, th2: 0.5 }, 0.05, 0.0);
        let mut rng = SimRng::new(11);
        let mut current = h.thresholds();
        for _ in 0..4000 {
            let throughput = 10.0 * current.th1;
            current = h.observe(throughput, &mut rng);
        }
        assert!(
            h.previous.th1 > 0.8,
            "expected climb towards th1 = 1, got {:?}",
            h.previous
        );
    }

    #[test]
    fn reconverges_after_forced_throughput_regression() {
        // The environment first rewards high Th1; after the climber settles
        // there, the landscape inverts (a forced regression: the point it
        // sits on is now the worst). Because moves are judged against the
        // *previous window* rather than a historical best, the climber must
        // walk back down and settle near the new peak.
        let mut h = HillClimber::with_params(Thresholds { th1: 0.5, th2: 0.5 }, 0.05, 0.0);
        let mut rng = SimRng::new(13);
        let mut current = h.thresholds();
        for _ in 0..4000 {
            current = h.observe(10.0 * current.th1, &mut rng);
        }
        assert!(
            h.previous.th1 > 0.8,
            "precondition: climber should sit near the old peak, got {:?}",
            h.previous
        );
        for _ in 0..8000 {
            current = h.observe(10.0 * (1.0 - current.th1), &mut rng);
        }
        assert!(
            h.previous.th1 < 0.2,
            "climber failed to re-converge after the regression: {:?}",
            h.previous
        );
    }

    #[test]
    fn random_jumps_move_far() {
        let mut h = HillClimber::with_params(Thresholds { th1: 0.5, th2: 0.5 }, 0.01, 1.0);
        let mut rng = SimRng::new(5);
        h.observe(1.0, &mut rng);
        let t = h.thresholds();
        // With p = 1 every proposal is a jump; the chance of landing within
        // one step of the start twice in a row is negligible.
        h.observe(1.0, &mut rng);
        let u = h.thresholds();
        assert!(
            (t.th1 - u.th1).abs() > 0.01 || (t.th2 - u.th2).abs() > 0.01,
            "jumps did not move: {t:?} vs {u:?}"
        );
    }

    #[test]
    #[should_panic(expected = "step")]
    fn invalid_step_rejected() {
        HillClimber::with_params(Thresholds::default(), 0.0, 0.0);
    }

    #[test]
    fn external_kick_without_nudge_reverts_to_stale_point() {
        // Reproduces the stale-baseline accept/revert bug an injected
        // threshold kick trips when the climber is NOT re-baselined: the
        // externally-set point is judged against the pre-kick throughput
        // and reverted to a point the injector explicitly moved away from.
        let mut h = HillClimber::with_params(Thresholds::default(), 0.05, 0.0);
        let mut rng = SimRng::new(17);
        h.observe(100.0, &mut rng); // baseline under the original point
        let kicked = Thresholds { th1: 0.9, th2: 0.1 };
        h.current = kicked; // raw external overwrite, no re-baseline
        let pre_kick = h.previous;
        // First post-kick window reads lower than the stale 100.0 baseline:
        // the climber "reverts" the kick as if it were its own bad move.
        h.observe(50.0, &mut rng);
        assert_eq!(
            h.previous, pre_kick,
            "without nudge, the kick must be (wrongly) reverted — \
             if this stops holding, the test no longer reproduces the bug"
        );
    }

    #[test]
    fn nudge_rebaselines_at_the_kicked_point() {
        let mut h = HillClimber::with_params(Thresholds::default(), 0.05, 0.0);
        let mut rng = SimRng::new(17);
        h.observe(100.0, &mut rng);
        let kicked = Thresholds { th1: 0.9, th2: 0.1 };
        h.nudge(kicked);
        assert_eq!(h.thresholds(), kicked);
        assert!(!h.has_baseline, "nudge must discard the stale baseline");
        // The same lower post-kick window now only *establishes* the fresh
        // baseline: the kicked point survives as the search's new origin.
        h.observe(50.0, &mut rng);
        assert_eq!(
            h.previous, kicked,
            "after nudge, the kicked point is the accepted origin"
        );
    }

    #[test]
    fn nudge_clamps_out_of_range_thresholds() {
        let mut h = HillClimber::new();
        h.nudge(Thresholds { th1: 7.0, th2: -3.0 });
        let t = h.thresholds();
        assert!((0.0..=1.0).contains(&t.th1));
        assert!((0.0..=1.0).contains(&t.th2));
    }
}
