//! The Seer scheduler — Algorithms 1–5 of the paper, implemented against
//! the `seer-runtime` scheduler interface.
//!
//! Mapping from the paper's pseudocode to this module:
//!
//! | Paper | Here |
//! |---|---|
//! | Alg. 1 line 5 (announce in `activeTxs`) | [`Seer::on_tx_start`] |
//! | Alg. 1 line 8 / Alg. 4 `WAIT-Seer-LOCKS` | [`Seer::pre_attempt_gates`] + [`Seer::on_sgl_wait`] |
//! | Alg. 1 line 16 / Alg. 3 `REGISTER-ABORT` | [`Seer::on_abort`] |
//! | Alg. 1 line 19 `RELEASE-Seer-LOCKS` | driver releases held locks on fall-back entry |
//! | Alg. 2 line 28 / Alg. 3 `REGISTER-COMMIT` | [`Seer::on_htm_commit`] |
//! | Alg. 4 `ACQUIRE-Seer-LOCKS` | the gates returned by [`Seer::on_abort`] |
//! | Alg. 4 lines 52–54 (opportunistic update + tuning) | [`Seer::on_sgl_wait`] (thread 0) |
//! | Alg. 5 `UPDATE-Seer-LOCKS` | [`Seer::force_update`] via `inference` + `locktable` |
//!
//! One deliberate deviation, documented in `DESIGN.md`: when a thread must
//! add a lock to an already-held set (e.g. a capacity abort striking after
//! transaction locks were acquired), it releases its Seer locks and
//! re-acquires the union in canonical order. The paper's pseudocode
//! acquires incrementally in program order, which can deadlock two threads
//! acquiring in opposite orders; a deterministic simulator (unlike a noisy
//! real machine) *will* hit that interleaving eventually, so the
//! reproduction uses the classical ordered-acquisition discipline instead.

use seer_htm::XStatus;
use seer_runtime::trace::{InferenceTrace, TraceSink};
use seer_runtime::{
    AbortDecision, BlockId, Gate, HookPoint, LockId, SchedEnv, SchedFault, Scheduler,
};
use seer_sim::{Cycles, ThreadId};

use crate::active::ActiveTxs;
use crate::config::SeerConfig;
use crate::engine::InferenceEngine;
use crate::hillclimb::HillClimber;
use crate::inference::Thresholds;
use crate::locktable::LockTable;
use crate::stats::{MergedStats, ThreadStats};

/// One recomputation of the locking scheme, for convergence analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRecord {
    /// Virtual time of the recomputation.
    pub at: Cycles,
    /// Total (block, lock) entries in the new table.
    pub entries: usize,
    /// Whether the table's content differed from the previous one.
    pub changed: bool,
}

/// Counters describing Seer's internal activity over a run (not part of
/// the paper's tables; used by tests, the accuracy experiment and docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SeerCounters {
    /// Lock-scheme recomputations performed.
    pub updates: u64,
    /// Hill-climbing evaluations performed.
    pub climb_steps: u64,
    /// Commit registrations.
    pub commits_registered: u64,
    /// Abort registrations.
    pub aborts_registered: u64,
}

/// The Seer scheduler (one global instance governs all threads).
#[derive(Debug, Clone)]
pub struct Seer {
    cfg: SeerConfig,
    threads: usize,
    blocks: usize,
    active: ActiveTxs,
    per_thread: Vec<ThreadStats>,
    merged: MergedStats,
    table: LockTable,
    climber: HillClimber,
    thresholds: Thresholds,
    acquired_tx_locks: Vec<bool>,
    acquired_core_lock: Vec<bool>,
    total_execs: u64,
    execs_at_last_update: u64,
    execs_at_last_climb: u64,
    commits_in_window: u64,
    window_start: Cycles,
    counters: SeerCounters,
    history: Vec<UpdateRecord>,
    /// Inference rounds still to be dropped (scenario staleness fault:
    /// [`SchedFault::DelayInference`]). While positive, due updates are
    /// skipped — the stats keep accumulating but the lock tables go stale.
    skip_inference_rounds: u64,
    /// Whether the most recent registration opportunity was sampled in —
    /// read back by [`Scheduler::overhead`], which the driver calls right
    /// after the corresponding hook.
    last_event_sampled: bool,
    /// Reused buffer for the concurrent-blocks scan performed on every
    /// sampled commit/abort registration — the hottest Seer path, so it
    /// must not allocate per event.
    scan_buf: Vec<BlockId>,
    /// Persistent incremental evaluator of Alg. 5: caches per-row results
    /// and recomputes only the rows dirtied since the previous update, so
    /// a steady-state round costs `O(dirty · n)` and allocates nothing.
    engine: InferenceEngine,
}

impl Seer {
    /// A Seer instance for a program with `blocks` atomic blocks executed
    /// by `threads` threads.
    pub fn new(cfg: SeerConfig, threads: usize, blocks: usize) -> Self {
        assert!(threads > 0 && blocks > 0);
        let thresholds = cfg.thresholds;
        Self {
            climber: HillClimber::with_params(thresholds, 0.1, 0.001),
            cfg,
            threads,
            blocks,
            active: ActiveTxs::new(threads),
            per_thread: (0..threads).map(|_| ThreadStats::new(blocks)).collect(),
            merged: MergedStats::new(blocks),
            table: LockTable::new(blocks),
            thresholds,
            acquired_tx_locks: vec![false; threads],
            acquired_core_lock: vec![false; threads],
            total_execs: 0,
            execs_at_last_update: 0,
            execs_at_last_climb: 0,
            commits_in_window: 0,
            window_start: 0,
            counters: SeerCounters::default(),
            history: Vec::new(),
            skip_inference_rounds: 0,
            last_event_sampled: true,
            scan_buf: Vec::new(),
            engine: InferenceEngine::new(),
        }
    }

    /// Scans the blocks concurrently announced by other threads into the
    /// reused `scan_buf` (sorted, deduplicated — see the comment in
    /// [`Seer::on_abort`] for why registration is per-block, not
    /// per-instance).
    fn scan_concurrent(&mut self, thread: ThreadId) {
        self.scan_buf.clear();
        self.scan_buf.extend(self.active.scan_others(thread));
        self.scan_buf.sort_unstable();
        self.scan_buf.dedup();
    }

    /// Convenience constructor with the full (headline) configuration.
    pub fn full(threads: usize, blocks: usize) -> Self {
        Self::new(SeerConfig::full(), threads, blocks)
    }

    /// Current inference thresholds.
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Read access to the current locking scheme.
    pub fn lock_table(&self) -> &LockTable {
        &self.table
    }

    /// Internal activity counters.
    pub fn counters(&self) -> SeerCounters {
        self.counters
    }

    /// Chronological record of the in-run lock-scheme recomputations
    /// (convergence analysis; `force_update` calls made by external code
    /// after the run are not recorded).
    pub fn update_history(&self) -> &[UpdateRecord] {
        &self.history
    }

    /// Virtual time at which the locking scheme last *changed*, if it ever
    /// did — the convergence point of the inference.
    pub fn converged_at(&self) -> Option<Cycles> {
        self.history.iter().rev().find(|r| r.changed).map(|r| r.at)
    }

    /// Merged statistics (rebuilt on every update).
    pub fn merged_stats(&self) -> &MergedStats {
        &self.merged
    }

    /// Serialized pairs currently in force, as `(x, y)` with `y` in `x`'s
    /// lock row — the inferred conflict relation the `accuracy` experiment
    /// scores against the simulator's ground truth.
    pub fn inferred_pairs(&self) -> Vec<(BlockId, BlockId)> {
        (0..self.blocks)
            .flat_map(|x| self.table.row(x).iter().map(move |&y| (x, y)))
            .collect()
    }

    /// Replaces the locking scheme with an externally supplied set of
    /// conflict pairs and freezes nothing else — used by oracle experiments
    /// that want Seer's mechanisms with a known-perfect conflict relation.
    pub fn plant_lock_table(&mut self, pairs: &[(BlockId, BlockId)]) {
        self.table.rebuild(pairs);
    }

    /// UPDATE-Seer-LOCKS (Alg. 5): merge per-thread statistics, recompute
    /// the conflict pairs under the current thresholds, swap the table.
    pub fn force_update(&mut self) {
        self.update_with_trace(None);
    }

    /// The update, optionally emitting one [`InferenceTrace`] to `sink`
    /// stamped with virtual time `now`. The traced and untraced paths run
    /// the same inference kernel (through [`InferenceEngine`]), so the
    /// emitted verdicts are the decisions, not a reconstruction.
    fn update_with_trace(&mut self, trace: Option<(&mut dyn TraceSink, Cycles)>) {
        // `self.merged` is maintained incrementally: every sampled
        // registration is folded into it alongside the owning thread's
        // table (`MergedStats::add_commit` / `add_abort`), so an inference
        // round starts from current matrices without re-summing every
        // per-thread table — and each registration marks its row dirty, so
        // the persistent engine recomputes only changed rows and reuses
        // its own scratch (zero steady-state allocations). The only
        // operation the dual-write cannot track is decay, which resyncs
        // explicitly below (dirtying every row).
        let th = self.thresholds;
        let min_sigma = self.cfg.min_sigma;
        let pairs = match trace {
            Some((sink, now)) if sink.enabled() => {
                // A trace record carries every row, so the traced round
                // recomputes all of them (refreshing the cache in passing).
                let digest = self.merged.digest();
                let mut rows = Vec::with_capacity(self.blocks);
                let pairs =
                    self.engine
                        .round_traced(&mut self.merged, th, min_sigma, &mut |r| rows.push(r));
                sink.inference(InferenceTrace {
                    round: self.counters.updates + 1,
                    at: now,
                    stats_digest: digest,
                    th1: th.th1,
                    th2: th.th2,
                    total_execs: self.total_execs,
                    rows,
                });
                pairs
            }
            _ => self.engine.round(&mut self.merged, th, min_sigma),
        };
        self.table.rebuild(pairs);
        self.counters.updates += 1;
        self.execs_at_last_update = self.total_execs;
        if let Some(every) = self.cfg.decay_every_updates {
            if self.counters.updates.is_multiple_of(every) {
                for t in &mut self.per_thread {
                    t.decay();
                }
                // Integer halving does not distribute over the sum, so the
                // incremental merge cannot mirror decay; rebuild once per
                // decay (rare) to re-anchor the merged view.
                self.merged.merge_from(self.per_thread.iter());
            }
        }
    }

    /// Cheap content fingerprint of the lock table (for change detection).
    fn table_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for x in 0..self.blocks {
            for &y in self.table.row(x) {
                h ^= (x as u64) << 32 | y as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }

    fn maybe_update(&mut self, env: &mut SchedEnv<'_>) {
        if self.total_execs - self.execs_at_last_update >= self.cfg.update_period_execs {
            if self.skip_inference_rounds > 0 {
                // Staleness fault in force: drop this due round. Resetting
                // the exec watermark makes the drop consume a full update
                // period, like a lost timer tick rather than a deferral.
                self.skip_inference_rounds -= 1;
                self.execs_at_last_update = self.total_execs;
            } else {
                let before = self.table_checksum();
                let now = env.now;
                self.update_with_trace(Some((&mut *env.trace, now)));
                let changed = self.table_checksum() != before;
                self.history.push(UpdateRecord {
                    at: env.now,
                    entries: self.table.total_entries(),
                    changed,
                });
            }
        }
        if self.cfg.hill_climbing
            && self.total_execs - self.execs_at_last_climb >= self.cfg.climb_period_execs
        {
            let elapsed = env.now.saturating_sub(self.window_start);
            if elapsed > 0 {
                let throughput = self.commits_in_window as f64 / elapsed as f64;
                self.thresholds = self.climber.observe(throughput, env.rng);
                self.counters.climb_steps += 1;
            }
            self.commits_in_window = 0;
            self.window_start = env.now;
            self.execs_at_last_climb = self.total_execs;
        }
    }

    /// The set of Seer locks `thread` should hold, given its flags plus the
    /// newly wanted classes.
    fn wanted_locks(
        &self,
        thread: ThreadId,
        block: BlockId,
        want_core: bool,
        want_tx: bool,
        env: &SchedEnv<'_>,
    ) -> Vec<LockId> {
        let mut locks = Vec::new();
        if want_core || self.acquired_core_lock[thread] {
            locks.push(LockId::Core(env.topology.core_of(thread)));
        }
        if want_tx || self.acquired_tx_locks[thread] {
            locks.extend(self.table.row(block).iter().map(|&y| LockId::Tx(y)));
        }
        locks
    }
}

impl Scheduler for Seer {
    fn name(&self) -> &'static str {
        "Seer"
    }

    fn attempt_budget(&self) -> u32 {
        self.cfg.budget
    }

    fn on_tx_start(&mut self, thread: ThreadId, block: BlockId, _env: &mut SchedEnv<'_>) {
        // Alg. 1 lines 2-5: reset flags, announce the transaction.
        self.acquired_tx_locks[thread] = false;
        self.acquired_core_lock[thread] = false;
        self.active.announce(thread, block);
    }

    fn pre_attempt_gates(
        &mut self,
        thread: ThreadId,
        block: BlockId,
        _attempts_left: u32,
        env: &mut SchedEnv<'_>,
    ) -> Vec<Gate> {
        // WAIT-Seer-LOCKS (Alg. 4 lines 50-58).
        let mut gates = vec![Gate::WaitWhileLocked(LockId::Sgl)];
        if self.cfg.tx_locks && !self.acquired_tx_locks[thread] {
            gates.push(Gate::WaitWhileLocked(LockId::Tx(block)));
        }
        if self.cfg.core_locks && !self.acquired_core_lock[thread] {
            gates.push(Gate::WaitWhileLocked(LockId::Core(env.topology.core_of(thread))));
        }
        gates
    }

    fn on_abort(
        &mut self,
        thread: ThreadId,
        block: BlockId,
        status: XStatus,
        attempts_left: u32,
        env: &mut SchedEnv<'_>,
    ) -> AbortDecision {
        // REGISTER-ABORT (Alg. 3 lines 33-37). The scan is deduplicated
        // per atomic block: the paper's probability definitions
        // (P(x aborts ∧ x‖y) = a_xy / e_x) only stay probabilities if a_xy
        // counts *events in which some instance of y was active*, not
        // active instances — with 8 threads running one hot block, the
        // per-instance reading pushes the "probability" past 1 and washes
        // out Th1's discriminating power. Sampling (future-work extension)
        // drops whole events, which keeps both ratios unbiased.
        self.last_event_sampled = self.cfg.sampling >= 1.0 || env.rng.chance(self.cfg.sampling);
        if self.last_event_sampled {
            self.scan_concurrent(thread);
            self.per_thread[thread].register_abort(block, self.scan_buf.iter().copied());
            self.merged.add_abort(block, self.scan_buf.iter().copied());
            self.total_execs += 1;
            self.counters.aborts_registered += 1;
        }

        if attempts_left == 0 {
            // Budget exhausted: the driver takes the fall-back; it releases
            // our locks first (RELEASE-Seer-LOCKS, Alg. 1 line 19).
            self.acquired_tx_locks[thread] = false;
            self.acquired_core_lock[thread] = false;
            return AbortDecision::Fallback;
        }

        // ACQUIRE-Seer-LOCKS (Alg. 4 lines 43-49).
        let want_core =
            self.cfg.core_locks && status.is_capacity() && !self.acquired_core_lock[thread];
        let want_tx = self.cfg.tx_locks
            && attempts_left == 1
            && !self.acquired_tx_locks[thread]
            && !self.table.row(block).is_empty();

        if !want_core && !want_tx {
            return AbortDecision::Retry { gates: Vec::new() };
        }

        let holding_any = self.acquired_tx_locks[thread] || self.acquired_core_lock[thread];
        let locks = self.wanted_locks(thread, block, want_core, want_tx, env);
        if want_core {
            self.acquired_core_lock[thread] = true;
        }
        if want_tx {
            self.acquired_tx_locks[thread] = true;
        }
        let acquire = Gate::AcquireMany {
            via_htm: self.cfg.htm_lock_acquisition,
            locks,
        };
        let gates = if holding_any {
            // Ordered re-acquisition of the union (see module docs).
            vec![Gate::ReleaseHeld, acquire]
        } else {
            vec![acquire]
        };
        AbortDecision::Retry { gates }
    }

    fn on_htm_commit(&mut self, thread: ThreadId, block: BlockId, env: &mut SchedEnv<'_>) {
        // REGISTER-COMMIT (Alg. 3 lines 38-42) + activeTxs removal
        // (Alg. 2), deduplicated and sampled like REGISTER-ABORT.
        self.last_event_sampled = self.cfg.sampling >= 1.0 || env.rng.chance(self.cfg.sampling);
        if self.last_event_sampled {
            self.scan_concurrent(thread);
            self.per_thread[thread].register_commit(block, self.scan_buf.iter().copied());
            self.merged.add_commit(block, self.scan_buf.iter().copied());
            self.total_execs += 1;
            self.counters.commits_registered += 1;
        }
        self.commits_in_window += 1;
        self.active.clear(thread);
        self.acquired_tx_locks[thread] = false;
        self.acquired_core_lock[thread] = false;
    }

    fn on_fallback_commit(&mut self, thread: ThreadId, _block: BlockId, _env: &mut SchedEnv<'_>) {
        // Alg. 2: the fall-back path does not register statistics (xtest()
        // is false); it only clears the announcement.
        self.commits_in_window += 1;
        self.active.clear(thread);
        self.acquired_tx_locks[thread] = false;
        self.acquired_core_lock[thread] = false;
    }

    fn on_sgl_wait(&mut self, thread: ThreadId, env: &mut SchedEnv<'_>) {
        // Alg. 4 lines 52-54: one designated thread exploits the wait to
        // refresh the locking scheme and tune the thresholds.
        if thread == 0 {
            self.maybe_update(env);
        }
    }

    fn on_periodic(&mut self, env: &mut SchedEnv<'_>) {
        // Robustness trigger for workloads that (thanks to Seer) almost
        // never take the fall-back; see DESIGN.md.
        self.maybe_update(env);
    }

    fn on_fault(&mut self, fault: &SchedFault, _env: &mut SchedEnv<'_>) {
        match *fault {
            SchedFault::WipeStats => {
                // Stats amnesia: the learned profile is gone; the lock
                // table stays (stale) until the next inference round
                // rebuilds it from the post-wipe evidence.
                for t in &mut self.per_thread {
                    *t = ThreadStats::new(self.blocks);
                }
                self.merged = MergedStats::new(self.blocks);
            }
            SchedFault::KickThresholds { th1, th2 } => {
                let kicked = Thresholds { th1, th2 }.clamped();
                self.thresholds = kicked;
                // Re-baseline the climber at the kicked point — judging it
                // against the pre-kick throughput would revert the kick as
                // if it were the climber's own bad move (see
                // `HillClimber::nudge`).
                self.climber.nudge(kicked);
            }
            SchedFault::DelayInference { rounds } => {
                self.skip_inference_rounds += rounds;
            }
        }
    }

    fn overhead(&self, point: HookPoint) -> Cycles {
        let c = &self.cfg.costs;
        match point {
            HookPoint::TxStart => c.announce,
            HookPoint::Abort | HookPoint::HtmCommit => {
                // The scan cost is only paid when the event was sampled in
                // (the driver invokes this right after the hook).
                if self.last_event_sampled {
                    c.register_fixed + c.scan_per_slot * self.threads as Cycles
                } else {
                    c.register_fixed / 2
                }
            }
            HookPoint::FallbackCommit => c.announce,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seer_runtime::LockBank;
    use seer_sim::{SimRng, Topology};

    fn env<'a>(bank: &'a LockBank, rng: &'a mut SimRng) -> SchedEnv<'a> {
        SchedEnv {
            now: 1000,
            locks: bank,
            topology: Topology::haswell_e3(),
            rng,
            // Zero-sized, so the leak is free.
            trace: Box::leak(Box::new(seer_runtime::NullTraceSink)),
        }
    }

    #[test]
    fn announces_and_clears_active() {
        let mut s = Seer::full(4, 3);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(1, 2, &mut e);
        assert_eq!(s.active.get(1), Some(2));
        s.on_htm_commit(1, 2, &mut e);
        assert_eq!(s.active.get(1), None);
    }

    #[test]
    fn abort_registration_scans_concurrent() {
        let mut s = Seer::full(3, 4);
        let bank = LockBank::new(4, 4);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 1, &mut e);
        s.on_tx_start(1, 2, &mut e);
        s.on_tx_start(2, 3, &mut e);
        s.on_abort(0, 1, XStatus::conflict(), 4, &mut e);
        assert_eq!(s.per_thread[0].aborts(1, 2), 1);
        assert_eq!(s.per_thread[0].aborts(1, 3), 1);
        assert_eq!(s.per_thread[0].aborts(1, 1), 0);
        assert_eq!(s.per_thread[0].executions(1), 1);
    }

    #[test]
    fn wait_gates_follow_paper_guards() {
        let mut s = Seer::full(4, 3);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        let gates = s.pre_attempt_gates(1, 2, 5, &mut e);
        assert_eq!(
            gates,
            vec![
                Gate::WaitWhileLocked(LockId::Sgl),
                Gate::WaitWhileLocked(LockId::Tx(2)),
                Gate::WaitWhileLocked(LockId::Core(1)),
            ]
        );
        // Once the thread holds tx locks, it no longer waits on its own.
        s.acquired_tx_locks[1] = true;
        let gates = s.pre_attempt_gates(1, 2, 5, &mut e);
        assert_eq!(
            gates,
            vec![
                Gate::WaitWhileLocked(LockId::Sgl),
                Gate::WaitWhileLocked(LockId::Core(1)),
            ]
        );
    }

    #[test]
    fn capacity_abort_takes_core_lock() {
        let mut s = Seer::full(8, 3);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(5, 0, &mut e);
        let d = s.on_abort(5, 0, XStatus::capacity(), 4, &mut e);
        match d {
            AbortDecision::Retry { gates } => {
                assert_eq!(
                    gates,
                    vec![Gate::AcquireMany {
                        locks: vec![LockId::Core(1)], // thread 5 -> core 1
                        via_htm: true,
                    }]
                );
            }
            AbortDecision::Fallback => panic!(),
        }
        assert!(s.acquired_core_lock[5]);
        // A second capacity abort does not re-acquire.
        let d = s.on_abort(5, 0, XStatus::capacity(), 3, &mut e);
        assert_eq!(d, AbortDecision::Retry { gates: vec![] });
    }

    #[test]
    fn last_attempt_takes_inferred_tx_locks() {
        let mut s = Seer::full(2, 3);
        s.table.rebuild(&[(0, 2)]);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 0, &mut e);
        // Not the last attempt: no tx locks yet.
        let d = s.on_abort(0, 0, XStatus::conflict(), 2, &mut e);
        assert_eq!(d, AbortDecision::Retry { gates: vec![] });
        // Last attempt: acquire the row of block 0 = {Tx(2)}.
        let d = s.on_abort(0, 0, XStatus::conflict(), 1, &mut e);
        match d {
            AbortDecision::Retry { gates } => assert_eq!(
                gates,
                vec![Gate::AcquireMany {
                    locks: vec![LockId::Tx(2)],
                    via_htm: true,
                }]
            ),
            AbortDecision::Fallback => panic!(),
        }
        assert!(s.acquired_tx_locks[0]);
    }

    #[test]
    fn capacity_after_tx_locks_reacquires_union_in_order() {
        let mut s = Seer::full(2, 3);
        s.table.rebuild(&[(0, 2)]);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 0, &mut e);
        let _ = s.on_abort(0, 0, XStatus::conflict(), 1, &mut e); // takes Tx(2)
        // The last attempt dies of capacity: core lock must join the set,
        // via release + ordered re-acquisition.
        let d = s.on_abort(0, 0, XStatus::capacity(), 1, &mut e);
        match d {
            AbortDecision::Retry { gates } => {
                assert_eq!(gates.len(), 2);
                assert_eq!(gates[0], Gate::ReleaseHeld);
                match &gates[1] {
                    Gate::AcquireMany { locks, .. } => {
                        assert!(locks.contains(&LockId::Core(0)));
                        assert!(locks.contains(&LockId::Tx(2)));
                    }
                    g => panic!("unexpected gate {g:?}"),
                }
            }
            AbortDecision::Fallback => panic!(),
        }
    }

    #[test]
    fn empty_lock_row_takes_no_tx_locks() {
        let mut s = Seer::full(2, 3);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 0, &mut e);
        let d = s.on_abort(0, 0, XStatus::conflict(), 1, &mut e);
        assert_eq!(d, AbortDecision::Retry { gates: vec![] });
        assert!(!s.acquired_tx_locks[0]);
    }

    #[test]
    fn budget_exhaustion_falls_back() {
        let mut s = Seer::full(2, 3);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 0, &mut e);
        let d = s.on_abort(0, 0, XStatus::conflict(), 0, &mut e);
        assert_eq!(d, AbortDecision::Fallback);
    }

    #[test]
    fn update_builds_table_from_stats() {
        let mut s = Seer::new(
            SeerConfig {
                update_period_execs: 1,
                ..SeerConfig::full()
            },
            2,
            2,
        );
        // Fabricate strong evidence that block 0 conflicts with block 1.
        for _ in 0..60 {
            s.per_thread[0].register_abort(0, [1].into_iter());
        }
        for _ in 0..40 {
            s.per_thread[0].register_commit(0, [].into_iter());
        }
        // Fabricated directly into the per-thread table, bypassing the
        // hooks' incremental dual-write — sync the merged view by hand.
        s.merged.merge_from(s.per_thread.iter());
        s.total_execs = 100;
        s.force_update();
        assert_eq!(s.lock_table().row(0), &[1]);
        assert_eq!(s.lock_table().row(1), &[0]);
        assert_eq!(s.counters().updates, 1);
        assert_eq!(s.inferred_pairs(), vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn periodic_update_emits_inference_trace_when_sink_enabled() {
        use seer_runtime::MemoryTraceSink;
        let mut s = Seer::new(
            SeerConfig {
                update_period_execs: 1,
                ..SeerConfig::full()
            },
            2,
            2,
        );
        for _ in 0..60 {
            s.per_thread[0].register_abort(0, [1].into_iter());
        }
        for _ in 0..40 {
            s.per_thread[0].register_commit(0, [].into_iter());
        }
        // As above: fabricated stats need an explicit merged-view sync.
        s.merged.merge_from(s.per_thread.iter());
        s.total_execs = 100;
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut sink = MemoryTraceSink::new();
        let mut e = SchedEnv {
            now: 1234,
            locks: &bank,
            topology: Topology::haswell_e3(),
            rng: &mut rng,
            trace: &mut sink,
        };
        s.on_periodic(&mut e);
        assert_eq!(sink.inference.len(), 1, "one update, one trace record");
        let tr = &sink.inference[0];
        assert_eq!(tr.round, 1);
        assert_eq!(tr.at, 1234);
        assert_eq!(tr.total_execs, 100);
        assert_eq!(tr.rows.len(), 2, "one row per atomic block");
        let (_, pair) = tr.decision(0, 1).expect("pair (0,1) must be traced");
        assert!(pair.verdict.serialize(), "strong evidence must serialize");
        assert_eq!(s.lock_table().row(0), &[1], "trace agrees with the table");
        assert_eq!(tr.stats_digest, s.merged_stats().digest());
    }

    #[test]
    fn incremental_merge_tracks_the_per_thread_tables() {
        // Drive registrations through the public hooks and check the
        // incrementally maintained merge equals a from-scratch rebuild —
        // including across a decay round, which the dual-write cannot
        // mirror and must resync explicitly.
        let mut s = Seer::new(
            SeerConfig {
                update_period_execs: 3,
                ..SeerConfig::with_decay(1)
            },
            3,
            4,
        );
        let bank = LockBank::new(4, 4);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 1, &mut e);
        s.on_tx_start(1, 2, &mut e);
        s.on_tx_start(2, 3, &mut e);
        s.on_abort(0, 1, XStatus::conflict(), 4, &mut e);
        s.on_htm_commit(1, 2, &mut e);
        s.on_abort(2, 3, XStatus::capacity(), 4, &mut e);
        s.on_htm_commit(0, 1, &mut e);
        s.on_periodic(&mut e); // due update -> inference + decay
        assert_eq!(s.counters().updates, 1);
        s.on_tx_start(1, 0, &mut e);
        s.on_tx_start(2, 2, &mut e);
        s.on_abort(1, 0, XStatus::conflict(), 4, &mut e);
        s.on_htm_commit(2, 2, &mut e);
        let mut rebuilt = MergedStats::new(4);
        rebuilt.merge_from(s.per_thread.iter());
        assert_eq!(rebuilt.commit, s.merged_stats().commit);
        assert_eq!(rebuilt.abort, s.merged_stats().abort);
        assert_eq!(rebuilt.executions, s.merged_stats().executions);
        assert_eq!(rebuilt.digest(), s.merged_stats().digest());
    }

    #[test]
    fn disabled_mechanisms_produce_no_gates() {
        let mut s = Seer::new(SeerConfig::profile_only(), 2, 3);
        s.table.rebuild(&[(0, 1)]);
        let bank = LockBank::new(4, 3);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 0, &mut e);
        assert_eq!(
            s.pre_attempt_gates(0, 0, 5, &mut e),
            vec![Gate::WaitWhileLocked(LockId::Sgl)]
        );
        let d = s.on_abort(0, 0, XStatus::capacity(), 1, &mut e);
        assert_eq!(d, AbortDecision::Retry { gates: vec![] });
    }

    #[test]
    fn overhead_scales_with_threads() {
        let s2 = Seer::full(2, 2);
        let s8 = Seer::full(8, 2);
        assert!(s8.overhead(HookPoint::HtmCommit) > s2.overhead(HookPoint::HtmCommit));
        assert!(s2.overhead(HookPoint::TxStart) > 0);
    }

    #[test]
    fn wipe_stats_fault_clears_the_profile() {
        let mut s = Seer::full(2, 2);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 0, &mut e);
        s.on_tx_start(1, 1, &mut e);
        s.on_abort(0, 0, XStatus::conflict(), 4, &mut e);
        assert_eq!(s.per_thread[0].executions(0), 1);
        s.on_fault(&SchedFault::WipeStats, &mut e);
        assert_eq!(s.per_thread[0].executions(0), 0, "profile must be wiped");
        assert_eq!(s.merged_stats().digest(), MergedStats::new(2).digest());
    }

    #[test]
    fn kick_thresholds_fault_rebaselines_the_climber() {
        let mut s = Seer::full(2, 2);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_fault(&SchedFault::KickThresholds { th1: 0.95, th2: 0.05 }, &mut e);
        assert_eq!(s.thresholds(), Thresholds { th1: 0.95, th2: 0.05 });
        assert_eq!(
            s.climber.thresholds(),
            Thresholds { th1: 0.95, th2: 0.05 },
            "the climber must be re-seated at the kicked point"
        );
        // Out-of-range kicks are clamped, not trusted.
        s.on_fault(&SchedFault::KickThresholds { th1: 9.0, th2: -1.0 }, &mut e);
        let t = s.thresholds();
        assert!((0.0..=1.0).contains(&t.th1) && (0.0..=1.0).contains(&t.th2));
    }

    #[test]
    fn delay_inference_fault_drops_due_rounds() {
        let mut s = Seer::new(
            SeerConfig {
                update_period_execs: 1,
                ..SeerConfig::full()
            },
            2,
            2,
        );
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_fault(&SchedFault::DelayInference { rounds: 2 }, &mut e);
        s.total_execs = 100;
        s.on_periodic(&mut e);
        assert_eq!(s.counters().updates, 0, "first due round dropped");
        s.total_execs = 200;
        s.on_periodic(&mut e);
        assert_eq!(s.counters().updates, 0, "second due round dropped");
        s.total_execs = 300;
        s.on_periodic(&mut e);
        assert_eq!(s.counters().updates, 1, "staleness ends after the delay");
    }

    #[test]
    fn fallback_commit_clears_but_does_not_register() {
        let mut s = Seer::full(2, 2);
        let bank = LockBank::new(4, 2);
        let mut rng = SimRng::new(0);
        let mut e = env(&bank, &mut rng);
        s.on_tx_start(0, 1, &mut e);
        s.on_fallback_commit(0, 1, &mut e);
        assert_eq!(s.active.get(0), None);
        assert_eq!(s.counters().commits_registered, 0);
        assert_eq!(s.per_thread[0].executions(1), 0);
    }
}
