//! Seer configuration: mechanism toggles and tuning knobs.
//!
//! Every mechanism the paper ablates in Figure 5 is independently
//! switchable, so the harness can build the cumulative variants
//! (profile-only → +tx-locks → +core-locks → +htm-lock-acquisition →
//! +hill-climbing) from the same implementation.

use seer_sim::Cycles;

use crate::inference::{Thresholds, MIN_DISCRIMINATIVE_SIGMA};

/// Instrumentation costs charged to threads, in cycles (the source of the
/// Figure 4 overhead). Scanning `activeTxs` costs `scan_per_slot` per
/// thread slot; announcing costs one store plus pipeline noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingCosts {
    /// Cost of announcing in `activeTxs` at transaction start.
    pub announce: Cycles,
    /// Per-slot cost of scanning `activeTxs` on commit/abort registration.
    pub scan_per_slot: Cycles,
    /// Fixed cost of the matrix row updates per registration.
    pub register_fixed: Cycles,
}

impl Default for ProfilingCosts {
    fn default() -> Self {
        Self {
            announce: 4,
            scan_per_slot: 2,
            register_fixed: 6,
        }
    }
}

/// The tunable scheduling knobs of Seer, gathered in one pure-data
/// struct so external tooling (the `seer tune` search subsystem, config
/// files, spec strings) can carry them around without knowing about the
/// mechanism toggles in [`SeerConfig`].
///
/// `Default` is pinned to the paper's hand-picked constants, and
/// [`SeerConfig::with_params`]`(SeerParams::default())` equals
/// [`SeerConfig::full`] — the conformance suite holds the replay
/// fixtures to that identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeerParams {
    /// Sampling window: executions between lock-scheme recomputations.
    pub update_period_execs: u64,
    /// Executions between hill-climbing evaluations.
    pub climb_period_execs: u64,
    /// Statistics half-life in lock-scheme updates (`None` = never decay).
    pub decay_every_updates: Option<u64>,
    /// Minimum row standard deviation for the Gaussian percentile cutoff
    /// to be considered discriminative.
    pub min_sigma: f64,
    /// Conjunctive activation threshold (`Th1` of Alg. 5).
    pub th1: f64,
    /// Gaussian percentile threshold (`Th2` of Alg. 5).
    pub th2: f64,
}

impl Default for SeerParams {
    fn default() -> Self {
        let th = Thresholds::default();
        Self {
            update_period_execs: 300,
            climb_period_execs: 1_000,
            decay_every_updates: None,
            min_sigma: MIN_DISCRIMINATIVE_SIGMA,
            th1: th.th1,
            th2: th.th2,
        }
    }
}

/// Full configuration of the Seer scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct SeerConfig {
    /// Hardware attempts before the fall-back (paper: 5).
    pub budget: u32,
    /// Acquire the inferred transaction locks on the last attempt.
    pub tx_locks: bool,
    /// Acquire the per-physical-core lock after capacity aborts.
    pub core_locks: bool,
    /// Take multiple locks inside one small hardware transaction
    /// (the multi-CAS optimization) instead of one CAS per lock.
    pub htm_lock_acquisition: bool,
    /// Self-tune `Th1`/`Th2` by stochastic hill climbing.
    pub hill_climbing: bool,
    /// Initial (or, with hill climbing off, permanent) thresholds.
    pub thresholds: Thresholds,
    /// Minimum executions between lock-scheme recomputations
    /// ("enough-samples" pacing of UPDATE-Seer-LOCKS).
    pub update_period_execs: u64,
    /// Minimum executions between hill-climbing evaluations.
    pub climb_period_execs: u64,
    /// Halve (decay) the statistics matrices every this many lock-scheme
    /// updates; `None` accumulates forever (the paper's behaviour).
    /// Decaying lets the inferred scheme *forget* conflict relations that
    /// a phase change made obsolete.
    pub decay_every_updates: Option<u64>,
    /// Probability of registering any given commit/abort event in the
    /// statistics (1.0 = always, the paper's behaviour). Sub-unit values
    /// implement the probabilistic-sampling extension the paper's future
    /// work proposes (its ref. \[5\]): unbiased statistics at a fraction of
    /// the monitoring overhead, at the cost of slower convergence.
    pub sampling: f64,
    /// Minimum row standard deviation below which the Gaussian percentile
    /// cutoff is not discriminative and the conditional check passes
    /// unconditionally (paper:
    /// [`MIN_DISCRIMINATIVE_SIGMA`]).
    pub min_sigma: f64,
    /// Instrumentation cost model.
    pub costs: ProfilingCosts,
}

impl Default for SeerConfig {
    fn default() -> Self {
        Self::full()
    }
}

impl SeerConfig {
    /// Full Seer: every mechanism enabled (the paper's headline system).
    pub fn full() -> Self {
        Self {
            budget: 5,
            tx_locks: true,
            core_locks: true,
            htm_lock_acquisition: true,
            hill_climbing: true,
            thresholds: Thresholds::default(),
            update_period_execs: 300,
            climb_period_execs: 1_000,
            decay_every_updates: None,
            sampling: 1.0,
            min_sigma: MIN_DISCRIMINATIVE_SIGMA,
            costs: ProfilingCosts::default(),
        }
    }

    /// Full Seer with its scheduling knobs replaced by `params` — the
    /// bridge from the tuner's pure-data [`SeerParams`] to a runnable
    /// configuration. Every mechanism toggle matches [`Self::full`], so
    /// `with_params(SeerParams::default()) == full()`.
    pub fn with_params(params: SeerParams) -> Self {
        Self {
            thresholds: Thresholds {
                th1: params.th1,
                th2: params.th2,
            },
            update_period_execs: params.update_period_execs,
            climb_period_execs: params.climb_period_execs,
            decay_every_updates: params.decay_every_updates,
            min_sigma: params.min_sigma,
            ..Self::full()
        }
    }

    /// The scheduling knobs of this configuration, as a [`SeerParams`].
    pub fn params(&self) -> SeerParams {
        SeerParams {
            update_period_execs: self.update_period_execs,
            climb_period_execs: self.climb_period_execs,
            decay_every_updates: self.decay_every_updates,
            min_sigma: self.min_sigma,
            th1: self.thresholds.th1,
            th2: self.thresholds.th2,
        }
    }

    /// The Figure 4 variant: all monitoring, inference and self-tuning
    /// overheads are paid, but no lock is ever acquired.
    pub fn profile_only() -> Self {
        Self {
            tx_locks: false,
            core_locks: false,
            htm_lock_acquisition: false,
            ..Self::full()
        }
    }

    /// Figure 5 cumulative variant: profile-only + transaction locks
    /// (per-CAS acquisition, static thresholds).
    pub fn plus_tx_locks() -> Self {
        Self {
            tx_locks: true,
            core_locks: false,
            htm_lock_acquisition: false,
            hill_climbing: false,
            ..Self::full()
        }
    }

    /// Figure 5 cumulative variant: + core locks.
    pub fn plus_core_locks() -> Self {
        Self {
            core_locks: true,
            ..Self::plus_tx_locks()
        }
    }

    /// Figure 5 cumulative variant: + HTM multi-CAS lock acquisition.
    pub fn plus_htm_locks() -> Self {
        Self {
            htm_lock_acquisition: true,
            ..Self::plus_core_locks()
        }
    }

    /// Figure 5 cumulative variant: + hill climbing — equals [`Self::full`].
    pub fn plus_hill_climbing() -> Self {
        Self {
            hill_climbing: true,
            ..Self::plus_htm_locks()
        }
    }

    /// Adaptivity extension: full Seer that halves its statistics every
    /// `updates` lock-scheme recomputations, so stale conflict relations
    /// fade after workload phase changes.
    ///
    /// # Panics
    /// If `updates` is zero.
    pub fn with_decay(updates: u64) -> Self {
        assert!(updates > 0, "decay period must be positive");
        Self {
            decay_every_updates: Some(updates),
            ..Self::full()
        }
    }

    /// Future-work extension: full Seer with sampled statistics
    /// collection (register each event with probability `p`).
    ///
    /// # Panics
    /// If `p` is outside `[0, 1]`.
    pub fn with_sampling(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "sampling probability in [0,1]");
        Self {
            sampling: p,
            ..Self::full()
        }
    }

    /// §5.3 ablation: *only* core locks (no transaction locks).
    pub fn core_locks_only() -> Self {
        Self {
            tx_locks: false,
            core_locks: true,
            htm_lock_acquisition: false,
            hill_climbing: false,
            ..Self::full()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_enables_everything() {
        let c = SeerConfig::full();
        assert!(c.tx_locks && c.core_locks && c.htm_lock_acquisition && c.hill_climbing);
        assert_eq!(c.budget, 5);
        assert_eq!(c.thresholds, Thresholds { th1: 0.3, th2: 0.8 });
    }

    #[test]
    fn profile_only_disables_all_locks() {
        let c = SeerConfig::profile_only();
        assert!(!c.tx_locks && !c.core_locks && !c.htm_lock_acquisition);
        // Monitoring costs remain — that is the point of the variant.
        assert!(c.costs.announce > 0);
    }

    #[test]
    fn cumulative_variants_nest() {
        assert!(SeerConfig::plus_tx_locks().tx_locks);
        assert!(!SeerConfig::plus_tx_locks().core_locks);
        assert!(SeerConfig::plus_core_locks().core_locks);
        assert!(!SeerConfig::plus_core_locks().htm_lock_acquisition);
        assert!(SeerConfig::plus_htm_locks().htm_lock_acquisition);
        assert!(!SeerConfig::plus_htm_locks().hill_climbing);
        assert_eq!(SeerConfig::plus_hill_climbing(), SeerConfig::full());
    }

    #[test]
    fn core_locks_only_variant() {
        let c = SeerConfig::core_locks_only();
        assert!(!c.tx_locks && c.core_locks);
    }

    #[test]
    fn sampling_defaults_to_always() {
        assert_eq!(SeerConfig::full().sampling, 1.0);
        assert_eq!(SeerConfig::with_sampling(0.25).sampling, 0.25);
    }

    #[test]
    #[should_panic(expected = "sampling probability")]
    fn sampling_out_of_range_rejected() {
        SeerConfig::with_sampling(1.5);
    }

    #[test]
    fn default_params_equal_the_paper_configuration() {
        // The identity the replay fixtures lean on: routing the default
        // knobs through the params bridge changes nothing.
        assert_eq!(SeerConfig::with_params(SeerParams::default()), SeerConfig::full());
        assert_eq!(SeerConfig::full().params(), SeerParams::default());
    }

    #[test]
    fn params_round_trip_through_config() {
        let p = SeerParams {
            update_period_execs: 150,
            climb_period_execs: 600,
            decay_every_updates: Some(16),
            min_sigma: 0.02,
            th1: 0.25,
            th2: 0.9,
        };
        let cfg = SeerConfig::with_params(p);
        assert_eq!(cfg.params(), p);
        // Mechanism toggles stay at the full-Seer settings.
        assert!(cfg.tx_locks && cfg.core_locks && cfg.htm_lock_acquisition && cfg.hill_climbing);
    }
}
