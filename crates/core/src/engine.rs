//! Incremental inference engine: dirty-row caching around Alg. 5.
//!
//! A periodic inference round is `O(n²)` over the merged matrices — cheap
//! at STAMP's handful of atomic blocks, dominant at the many-blocks scale
//! the synthetic workload opens up. But between two rounds only the rows
//! that *registered events* can change: row `x` of Alg. 5 reads exactly
//! `commit[x·n..]`, `abort[x·n..]` and `executions[x]`, all of which are
//! touched only by registrations of block `x` (or by a decay resync, which
//! dirties everything). [`MergedStats`] tracks those dirty rows, and this
//! engine caches the per-row outputs — the fitted Gaussian/cutoff and the
//! row's serialized pair list — recomputing only dirty rows each round and
//! concatenating cached + fresh lists in row order.
//!
//! Because cached and fresh rows both come from the one shared
//! `compute_row` kernel, and a cached row is (by the dirty-row invariant)
//! a function of inputs that have not changed, the concatenated output is
//! **byte-for-byte identical** to a full recompute — DESIGN.md §16. All
//! scratch (the conditional-probability row, per-row pair lists, the
//! output vector, recycled trace buffers) is owned by the engine and
//! reused, so a steady-state round allocates nothing.

use seer_runtime::trace::{PairDecision, RowTrace};
use seer_runtime::BlockId;

use crate::inference::{compute_row, RowFit, Thresholds};
use crate::stats::MergedStats;

/// One cached inference row: the fit plus the serialized partners of `x`.
#[derive(Debug, Clone, Default)]
struct CachedRow {
    fit: RowFit,
    pairs: Vec<BlockId>,
}

/// Persistent incremental evaluator of Alg. 5 (see the module docs).
///
/// Owned by the Seer scheduler across its whole lifetime; one call to
/// [`InferenceEngine::round`] (or [`InferenceEngine::round_traced`]) per
/// periodic update replaces the free full-recompute functions on the hot
/// path. The free functions remain the reference implementation — the
/// equivalence suite holds the engine to them, order included.
#[derive(Debug, Clone, Default)]
pub struct InferenceEngine {
    th: Thresholds,
    min_sigma: f64,
    /// False until the first round: an unprimed cache matches nothing.
    primed: bool,
    rows: Vec<CachedRow>,
    /// Scratch: conditional probabilities of the row being recomputed.
    cond: Vec<f64>,
    /// The concatenated output of the last round, reused between rounds.
    out: Vec<(BlockId, BlockId)>,
    /// Recycled `RowTrace::pairs` buffers for traced rounds.
    pool: Vec<Vec<PairDecision>>,
}

impl InferenceEngine {
    /// A fresh, unprimed engine. The first round is always a full
    /// recompute.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when every cached row is still a valid function of `stats`
    /// under `(th, min_sigma)` — i.e. the next round may skip clean rows.
    fn cache_valid(&self, stats: &MergedStats, th: Thresholds, min_sigma: f64) -> bool {
        self.primed
            && self.rows.len() == stats.blocks()
            && self.th == th
            && self.min_sigma == min_sigma
    }

    /// One untraced inference round: recomputes dirty rows, reuses clean
    /// ones, acknowledges the dirty bits, and returns the serialization
    /// pairs — bit-identical to
    /// [`crate::infer_conflict_pairs_with`]`(stats, th, min_sigma)`.
    ///
    /// The cache is invalidated wholesale (full recompute) when the engine
    /// is unprimed, the block count changed, or the thresholds/sigma floor
    /// moved (the hill climber and `KickThresholds` paths).
    pub fn round(
        &mut self,
        stats: &mut MergedStats,
        th: Thresholds,
        min_sigma: f64,
    ) -> &[(BlockId, BlockId)] {
        let n = stats.blocks();
        let full = !self.cache_valid(stats, th, min_sigma);
        if full {
            self.rows.clear();
            self.rows.resize_with(n, CachedRow::default);
            self.th = th;
            self.min_sigma = min_sigma;
            self.primed = true;
        }
        for x in 0..n {
            if full || stats.is_dirty(x) {
                let row = &mut self.rows[x];
                row.fit = compute_row(stats, x, th, min_sigma, &mut self.cond, &mut row.pairs, None);
            }
        }
        stats.clear_dirty();
        self.assemble()
    }

    /// One traced inference round: like [`InferenceEngine::round`], but
    /// every row is recomputed and handed to `on_row` as a [`RowTrace`] —
    /// an inference trace records the probabilities and verdicts of *all*
    /// pairs, so a traced round is inherently `O(n²)`. The verdicts come
    /// from the same kernel comparisons that emit the pairs. Trace pair
    /// buffers are drawn from the recycled pool (see
    /// [`InferenceEngine::recycle_rows`]).
    ///
    /// The cache is refreshed in passing, so a traced round keeps the
    /// following untraced rounds incremental.
    pub fn round_traced(
        &mut self,
        stats: &mut MergedStats,
        th: Thresholds,
        min_sigma: f64,
        on_row: &mut dyn FnMut(RowTrace),
    ) -> &[(BlockId, BlockId)] {
        let n = stats.blocks();
        if self.rows.len() != n {
            self.rows.clear();
            self.rows.resize_with(n, CachedRow::default);
        }
        self.th = th;
        self.min_sigma = min_sigma;
        self.primed = true;
        for x in 0..n {
            let mut trace = self.pool.pop().unwrap_or_default();
            trace.clear();
            let row = &mut self.rows[x];
            row.fit = compute_row(
                stats,
                x,
                th,
                min_sigma,
                &mut self.cond,
                &mut row.pairs,
                Some(&mut trace),
            );
            on_row(row.fit.into_row_trace(x, trace));
        }
        stats.clear_dirty();
        self.assemble()
    }

    /// Returns spent [`RowTrace`]s' pair buffers to the recycled pool, so
    /// the next traced round allocates nothing. The in-tree sinks retain
    /// trace records as live data (nothing to recycle); consumers that
    /// serialize-and-drop — the microbench's sparse-stream driver, say —
    /// feed their rows back through here.
    pub fn recycle_rows(&mut self, rows: impl IntoIterator<Item = RowTrace>) {
        self.pool.extend(rows.into_iter().map(|r| r.pairs));
    }

    /// Concatenates the cached pair lists in row order into the reused
    /// output vector.
    fn assemble(&mut self) -> &[(BlockId, BlockId)] {
        self.out.clear();
        for (x, row) in self.rows.iter().enumerate() {
            self.out.extend(row.pairs.iter().map(|&y| (x, y)));
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inference::{
        infer_conflict_pairs_traced_with, infer_conflict_pairs_with, MIN_DISCRIMINATIVE_SIGMA,
    };

    fn populated(blocks: usize, seed: u64) -> MergedStats {
        let mut m = MergedStats::new(blocks);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..blocks * 8 {
            let x = next() as usize % blocks;
            let y = next() as usize % blocks;
            if next() % 3 == 0 {
                m.add_commit(x, [y].into_iter());
            } else {
                m.add_abort(x, [y].into_iter());
            }
        }
        m
    }

    #[test]
    fn first_round_matches_full_recompute() {
        let mut m = populated(7, 42);
        let th = Thresholds::default();
        let reference = infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA);
        let mut eng = InferenceEngine::new();
        let got = eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        assert_eq!(got, &reference[..]);
    }

    #[test]
    fn clean_round_reuses_cache_and_still_matches() {
        let mut m = populated(7, 42);
        let th = Thresholds::default();
        let mut eng = InferenceEngine::new();
        eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        // No mutations: nothing is dirty, the round is pure reassembly.
        assert!((0..7).all(|x| !m.is_dirty(x)));
        let reference = infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA);
        let got = eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        assert_eq!(got, &reference[..]);
    }

    #[test]
    fn sparse_updates_recompute_only_dirty_rows() {
        let mut m = populated(9, 7);
        let th = Thresholds::default();
        let mut eng = InferenceEngine::new();
        eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        for step in 0..20 {
            let x = (step * 5) % 9;
            m.add_abort(x, [(step * 3) % 9].into_iter());
            assert!(m.is_dirty(x));
            let reference = infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA);
            let got = eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
            assert_eq!(got, &reference[..], "diverged at step {step}");
        }
    }

    #[test]
    fn threshold_change_invalidates_the_cache() {
        let mut m = populated(6, 11);
        let mut eng = InferenceEngine::new();
        eng.round(&mut m, Thresholds::default(), MIN_DISCRIMINATIVE_SIGMA);
        // New thresholds against *clean* stats: every cached cutoff is
        // stale and the engine must recompute from scratch.
        let th = Thresholds { th1: 0.05, th2: 0.5 };
        let reference = infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA);
        let got = eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        assert_eq!(got, &reference[..]);
        // Same for the tuner's sigma floor.
        let lax = infer_conflict_pairs_with(&m, th, 10.0);
        let got = eng.round(&mut m, th, 10.0);
        assert_eq!(got, &lax[..]);
    }

    #[test]
    fn block_count_change_invalidates_the_cache() {
        let mut small = populated(4, 3);
        let mut big = populated(8, 3);
        let th = Thresholds::default();
        let mut eng = InferenceEngine::new();
        eng.round(&mut small, th, MIN_DISCRIMINATIVE_SIGMA);
        let reference = infer_conflict_pairs_with(&big, th, MIN_DISCRIMINATIVE_SIGMA);
        let got = eng.round(&mut big, th, MIN_DISCRIMINATIVE_SIGMA);
        assert_eq!(got, &reference[..]);
    }

    #[test]
    fn traced_round_matches_reference_and_refreshes_cache() {
        let mut m = populated(6, 99);
        let th = Thresholds::default();
        let mut eng = InferenceEngine::new();
        eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        m.add_abort(2, [4].into_iter());

        let mut ref_rows = Vec::new();
        let reference = infer_conflict_pairs_traced_with(
            &m,
            th,
            MIN_DISCRIMINATIVE_SIGMA,
            Some(&mut |r| ref_rows.push(r)),
        );
        let mut rows = Vec::new();
        let got = eng.round_traced(&mut m, th, MIN_DISCRIMINATIVE_SIGMA, &mut |r| rows.push(r));
        assert_eq!(got, &reference[..]);
        assert_eq!(rows.len(), ref_rows.len());
        for (a, b) in rows.iter().zip(&ref_rows) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.eta, b.eta);
            assert_eq!(a.sigma2, b.sigma2);
            assert_eq!(a.cutoff, b.cutoff);
            assert_eq!(a.discriminative, b.discriminative);
            assert_eq!(a.pairs, b.pairs);
        }
        // The traced round acknowledged the dirty bits and refreshed the
        // cache: the next clean untraced round still matches.
        let reference = infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA);
        let got = eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        assert_eq!(got, &reference[..]);
        // Recycling returns one pool buffer per row for the next trace.
        eng.recycle_rows(rows);
        assert_eq!(eng.pool.len(), 6);
    }

    #[test]
    fn wipe_replacement_forces_full_recompute() {
        // The KickThresholds/WipeStats fault path replaces the merged
        // matrices outright; the replacement starts all-dirty, so the
        // stale cache is never consulted.
        let mut m = populated(5, 17);
        let th = Thresholds::default();
        let mut eng = InferenceEngine::new();
        eng.round(&mut m, th, MIN_DISCRIMINATIVE_SIGMA);
        let mut wiped = MergedStats::new(5);
        assert!((0..5).all(|x| wiped.is_dirty(x)));
        let reference = infer_conflict_pairs_with(&wiped, th, MIN_DISCRIMINATIVE_SIGMA);
        let got = eng.round(&mut wiped, th, MIN_DISCRIMINATIVE_SIGMA);
        assert_eq!(got, &reference[..]);
    }
}
