//! The `activeTxs` announcement array (paper Table 2, Fig. 2 steps 1/2/7).
//!
//! One slot per simulated thread (the paper sizes it "with as many slots as
//! threads in the program, making each entry … a single-writer multi-reader
//! register"). A thread announces the atomic block it is about to execute
//! at START and clears the slot at END; commit/abort registration scans the
//! whole array. The scan is deliberately *imprecise*: it sees every
//! announced transaction — including ones merely waiting to start — not
//! just the one that caused an abort. Seer's inference is designed to
//! tolerate exactly this noise.

use seer_sim::ThreadId;

use seer_runtime::BlockId;

/// The global announcement array.
#[derive(Debug, Clone)]
pub struct ActiveTxs {
    slots: Vec<Option<BlockId>>,
}

impl ActiveTxs {
    /// An array for `threads` threads, all slots empty.
    pub fn new(threads: usize) -> Self {
        Self {
            slots: vec![None; threads],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no thread has announced.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Thread `thread` announces it is executing `block` (Fig. 2 step 2).
    pub fn announce(&mut self, thread: ThreadId, block: BlockId) {
        self.slots[thread] = Some(block);
    }

    /// Thread `thread` finished its transaction (Fig. 2 step 7).
    pub fn clear(&mut self, thread: ThreadId) {
        self.slots[thread] = None;
    }

    /// The block announced by `thread`, if any.
    pub fn get(&self, thread: ThreadId) -> Option<BlockId> {
        self.slots[thread]
    }

    /// Scans the array the way REGISTER-ABORT/COMMIT do (Alg. 3): yields
    /// the blocks announced by every thread other than `scanner`.
    pub fn scan_others<'a>(
        &'a self,
        scanner: ThreadId,
    ) -> impl Iterator<Item = BlockId> + 'a {
        self.slots
            .iter()
            .enumerate()
            .filter(move |(t, slot)| *t != scanner && slot.is_some())
            .map(|(_, slot)| slot.expect("filtered to Some"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_scan_clear_cycle() {
        let mut a = ActiveTxs::new(4);
        assert!(a.is_empty());
        a.announce(0, 7);
        a.announce(2, 3);
        assert_eq!(a.get(0), Some(7));
        assert_eq!(a.get(1), None);
        let seen: Vec<_> = a.scan_others(0).collect();
        assert_eq!(seen, vec![3]);
        let seen: Vec<_> = a.scan_others(1).collect();
        assert_eq!(seen, vec![7, 3]);
        a.clear(0);
        assert_eq!(a.get(0), None);
        let seen: Vec<_> = a.scan_others(1).collect();
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn scanner_excludes_itself() {
        let mut a = ActiveTxs::new(2);
        a.announce(0, 1);
        a.announce(1, 2);
        assert_eq!(a.scan_others(0).collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.scan_others(1).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn reannounce_overwrites() {
        let mut a = ActiveTxs::new(1);
        a.announce(0, 1);
        a.announce(0, 5);
        assert_eq!(a.get(0), Some(5));
    }
}
