//! Commit/abort statistics matrices (paper Table 2, Fig. 2 steps 3–5).
//!
//! Each thread owns private `commitStats` / `abortStats` matrices and an
//! `executions` array, updated without synchronization on every commit and
//! abort by scanning `activeTxs` (Alg. 3). Periodically the per-thread
//! matrices are summed into merged global matrices that feed the
//! probabilistic inference (Alg. 5). Entry `[x][y]` counts events of block
//! `x` during which block `y` was observed running concurrently.

use seer_runtime::BlockId;

/// One thread's private statistics (a row-major `blocks × blocks` pair of
/// matrices plus the executions vector).
#[derive(Debug, Clone)]
pub struct ThreadStats {
    blocks: usize,
    commit: Vec<u64>,
    abort: Vec<u64>,
    executions: Vec<u64>,
}

impl ThreadStats {
    /// Zeroed statistics over `blocks` atomic blocks.
    pub fn new(blocks: usize) -> Self {
        Self {
            blocks,
            commit: vec![0; blocks * blocks],
            abort: vec![0; blocks * blocks],
            executions: vec![0; blocks],
        }
    }

    /// REGISTER-COMMIT: block `x` committed while `concurrent` blocks were
    /// announced by other threads.
    pub fn register_commit(&mut self, x: BlockId, concurrent: impl Iterator<Item = BlockId>) {
        self.executions[x] += 1;
        for y in concurrent {
            self.commit[x * self.blocks + y] += 1;
        }
    }

    /// REGISTER-ABORT: block `x` aborted while `concurrent` blocks were
    /// announced by other threads.
    pub fn register_abort(&mut self, x: BlockId, concurrent: impl Iterator<Item = BlockId>) {
        self.executions[x] += 1;
        for y in concurrent {
            self.abort[x * self.blocks + y] += 1;
        }
    }

    /// Raw commit count for the pair `(x, y)`.
    pub fn commits(&self, x: BlockId, y: BlockId) -> u64 {
        self.commit[x * self.blocks + y]
    }

    /// Raw abort count for the pair `(x, y)`.
    pub fn aborts(&self, x: BlockId, y: BlockId) -> u64 {
        self.abort[x * self.blocks + y]
    }

    /// Total executions (commits + aborts) of block `x`.
    pub fn executions(&self, x: BlockId) -> u64 {
        self.executions[x]
    }

    /// Halves every counter (integer division). Applied periodically, this
    /// turns the matrices into exponentially-decayed frequency estimates,
    /// so conflict relations that stopped occurring fade out — the
    /// adaptivity the paper's self-tuning discussion targets for
    /// "time varying workloads".
    pub fn decay(&mut self) {
        for v in self
            .commit
            .iter_mut()
            .chain(self.abort.iter_mut())
            .chain(self.executions.iter_mut())
        {
            *v /= 2;
        }
    }
}

/// The merged global matrices (Fig. 2 step 5).
///
/// Besides the counters, the merge tracks **dirty rows**: which block rows
/// changed since [`MergedStats::clear_dirty`] was last called. Row `x` of
/// the inference (Alg. 5) reads only `commit[x·n..]`, `abort[x·n..]` and
/// `executions[x]`, so [`MergedStats::add_commit`]/[`MergedStats::add_abort`]
/// dirty exactly row `x`, while [`MergedStats::merge_from`] (the decay
/// resync path) conservatively dirties every row. The incremental
/// [`crate::InferenceEngine`] uses these bits to skip untouched rows.
///
/// The matrix fields stay `pub` for diagnostic reads; code that *writes*
/// them directly (bypassing the methods) must call
/// [`MergedStats::mark_all_dirty`] afterwards or cached inference rows go
/// stale.
#[derive(Debug, Clone)]
pub struct MergedStats {
    blocks: usize,
    /// Merged `commitStats`.
    pub commit: Vec<u64>,
    /// Merged `abortStats`.
    pub abort: Vec<u64>,
    /// Merged `executions`.
    pub executions: Vec<u64>,
    dirty: Vec<bool>,
    all_dirty: bool,
}

impl MergedStats {
    /// Zeroed merged matrices over `blocks` atomic blocks. Every row starts
    /// dirty: a consumer that has never seen these stats has no valid cache.
    pub fn new(blocks: usize) -> Self {
        Self {
            blocks,
            commit: vec![0; blocks * blocks],
            abort: vec![0; blocks * blocks],
            executions: vec![0; blocks],
            dirty: vec![false; blocks],
            all_dirty: true,
        }
    }

    /// Recomputes the merge as the element-wise sum of `threads`' matrices.
    /// Every row may have changed (this is the decay/resync path), so all
    /// rows are marked dirty.
    pub fn merge_from<'a>(&mut self, threads: impl Iterator<Item = &'a ThreadStats>) {
        self.all_dirty = true;
        self.commit.iter_mut().for_each(|v| *v = 0);
        self.abort.iter_mut().for_each(|v| *v = 0);
        self.executions.iter_mut().for_each(|v| *v = 0);
        for t in threads {
            debug_assert_eq!(t.blocks, self.blocks, "mismatched block counts");
            for (dst, src) in self.commit.iter_mut().zip(&t.commit) {
                *dst += *src;
            }
            for (dst, src) in self.abort.iter_mut().zip(&t.abort) {
                *dst += *src;
            }
            for (dst, src) in self.executions.iter_mut().zip(&t.executions) {
                *dst += *src;
            }
        }
    }

    /// Folds one commit registration directly into the merged matrices —
    /// the same arithmetic as [`ThreadStats::register_commit`], applied at
    /// the merged level. Registering every event through both tables keeps
    /// the merge incrementally up to date, so an inference round starts
    /// from the current matrices instead of re-summing every per-thread
    /// table (an `O(threads × blocks²)` scan per round).
    pub fn add_commit(&mut self, x: BlockId, concurrent: impl Iterator<Item = BlockId>) {
        self.dirty[x] = true;
        self.executions[x] += 1;
        for y in concurrent {
            self.commit[x * self.blocks + y] += 1;
        }
    }

    /// Folds one abort registration directly into the merged matrices; the
    /// incremental counterpart of [`ThreadStats::register_abort`]. See
    /// [`MergedStats::add_commit`].
    pub fn add_abort(&mut self, x: BlockId, concurrent: impl Iterator<Item = BlockId>) {
        self.dirty[x] = true;
        self.executions[x] += 1;
        for y in concurrent {
            self.abort[x * self.blocks + y] += 1;
        }
    }

    /// Number of atomic blocks.
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// `commitStats[x][y]` — abbreviated `c_x,y` in the paper.
    pub fn c(&self, x: BlockId, y: BlockId) -> u64 {
        self.commit[x * self.blocks + y]
    }

    /// `abortStats[x][y]` — abbreviated `a_x,y` in the paper.
    pub fn a(&self, x: BlockId, y: BlockId) -> u64 {
        self.abort[x * self.blocks + y]
    }

    /// `executions[x]` — abbreviated `e_x` in the paper.
    pub fn e(&self, x: BlockId) -> u64 {
        self.executions[x]
    }

    /// Row `x` of the commit matrix as a slice (`c_x,0 .. c_x,n-1`).
    pub fn commit_row(&self, x: BlockId) -> &[u64] {
        &self.commit[x * self.blocks..(x + 1) * self.blocks]
    }

    /// Row `x` of the abort matrix as a slice (`a_x,0 .. a_x,n-1`).
    pub fn abort_row(&self, x: BlockId) -> &[u64] {
        &self.abort[x * self.blocks..(x + 1) * self.blocks]
    }

    /// Has row `x` changed since [`MergedStats::clear_dirty`]?
    pub fn is_dirty(&self, x: BlockId) -> bool {
        self.all_dirty || self.dirty[x]
    }

    /// Marks every row dirty. Required after any direct write to the `pub`
    /// matrix fields that bypasses the registration methods.
    pub fn mark_all_dirty(&mut self) {
        self.all_dirty = true;
    }

    /// Acknowledges all pending changes: every row reads as clean until the
    /// next mutation. Called by the inference engine once its caches have
    /// absorbed the current matrices.
    pub fn clear_dirty(&mut self) {
        self.all_dirty = false;
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    /// Total executions over all blocks (the "enough samples" signal for
    /// the self-tuning mechanism).
    pub fn total_executions(&self) -> u64 {
        self.executions.iter().sum()
    }

    /// FNV-1a digest over all three matrices — the snapshot fingerprint an
    /// inference round stores in its trace record, so an exported decision
    /// log can tell whether two rounds read the same statistics.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        mix(self.blocks as u64);
        self.commit.iter().for_each(|&v| mix(v));
        self.abort.iter().for_each(|&v| mix(v));
        self.executions.iter().for_each(|&v| mix(v));
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_paths_update_matrices() {
        let mut s = ThreadStats::new(3);
        s.register_abort(0, [1, 2].into_iter());
        s.register_abort(0, [1].into_iter());
        s.register_commit(0, [1].into_iter());
        s.register_commit(2, [].into_iter());
        assert_eq!(s.aborts(0, 1), 2);
        assert_eq!(s.aborts(0, 2), 1);
        assert_eq!(s.commits(0, 1), 1);
        assert_eq!(s.executions(0), 3);
        assert_eq!(s.executions(2), 1);
        assert_eq!(s.executions(1), 0);
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let mut a = ThreadStats::new(2);
        a.register_abort(0, [1].into_iter());
        a.register_commit(1, [0].into_iter());
        let mut b = ThreadStats::new(2);
        b.register_abort(0, [1].into_iter());
        b.register_abort(1, [0].into_iter());

        let mut m = MergedStats::new(2);
        m.merge_from([&a, &b].into_iter());
        assert_eq!(m.a(0, 1), 2);
        assert_eq!(m.a(1, 0), 1);
        assert_eq!(m.c(1, 0), 1);
        assert_eq!(m.e(0), 2);
        assert_eq!(m.e(1), 2);
        assert_eq!(m.total_executions(), 4);
    }

    #[test]
    fn decay_halves_all_counters() {
        let mut s = ThreadStats::new(2);
        for _ in 0..10 {
            s.register_abort(0, [1].into_iter());
        }
        for _ in 0..5 {
            s.register_commit(1, [0].into_iter());
        }
        s.decay();
        assert_eq!(s.aborts(0, 1), 5);
        assert_eq!(s.commits(1, 0), 2);
        assert_eq!(s.executions(0), 5);
        assert_eq!(s.executions(1), 2);
        // Probabilities are (approximately) preserved under decay.
        s.decay();
        s.decay();
        s.decay();
        assert_eq!(s.aborts(0, 1), 0, "counters fade to zero");
    }

    #[test]
    fn incremental_adds_match_a_full_rebuild() {
        // Mirror the same event stream into per-thread tables (merged by a
        // full rebuild) and into an incrementally maintained MergedStats;
        // both views must be identical down to the digest.
        let mut threads = [ThreadStats::new(3), ThreadStats::new(3)];
        let mut incremental = MergedStats::new(3);
        let events: &[(usize, BlockId, bool, &[BlockId])] = &[
            (0, 0, false, &[1, 2]),
            (1, 1, true, &[0]),
            (0, 2, true, &[]),
            (1, 0, false, &[2]),
            (0, 1, false, &[0, 2]),
            (1, 2, true, &[1]),
        ];
        for &(t, x, commit, concurrent) in events {
            if commit {
                threads[t].register_commit(x, concurrent.iter().copied());
                incremental.add_commit(x, concurrent.iter().copied());
            } else {
                threads[t].register_abort(x, concurrent.iter().copied());
                incremental.add_abort(x, concurrent.iter().copied());
            }
        }
        let mut rebuilt = MergedStats::new(3);
        rebuilt.merge_from(threads.iter());
        assert_eq!(rebuilt.commit, incremental.commit);
        assert_eq!(rebuilt.abort, incremental.abort);
        assert_eq!(rebuilt.executions, incremental.executions);
        assert_eq!(rebuilt.digest(), incremental.digest());
    }

    #[test]
    fn dirty_rows_track_incremental_writes() {
        let mut m = MergedStats::new(3);
        // Fresh stats: no consumer has a valid cache, so every row is dirty.
        assert!((0..3).all(|x| m.is_dirty(x)));
        m.clear_dirty();
        assert!((0..3).all(|x| !m.is_dirty(x)));
        // Incremental registration dirties exactly the registering row:
        // row x of the inference reads commit[x·n..], abort[x·n..] and
        // executions[x], none of which change for other rows.
        m.add_commit(1, [0, 2].into_iter());
        assert!(!m.is_dirty(0));
        assert!(m.is_dirty(1));
        assert!(!m.is_dirty(2));
        m.add_abort(2, [].into_iter());
        assert!(m.is_dirty(2));
        m.clear_dirty();
        assert!(!m.is_dirty(1));
    }

    #[test]
    fn decay_resync_dirties_every_row() {
        // The decay path halves per-thread counters and re-merges; any row
        // may shrink, so the resync must dirty all of them.
        let mut t = ThreadStats::new(2);
        t.register_abort(0, [1].into_iter());
        let mut m = MergedStats::new(2);
        m.merge_from([&t].into_iter());
        m.clear_dirty();
        t.decay();
        m.merge_from([&t].into_iter());
        assert!(m.is_dirty(0) && m.is_dirty(1));
        // mark_all_dirty covers direct writes to the pub fields.
        m.clear_dirty();
        m.mark_all_dirty();
        assert!(m.is_dirty(1));
    }

    #[test]
    fn row_slices_match_indexed_accessors() {
        let mut m = MergedStats::new(3);
        m.add_abort(1, [0, 2].into_iter());
        m.add_commit(1, [2].into_iter());
        for x in 0..3 {
            for y in 0..3 {
                assert_eq!(m.commit_row(x)[y], m.c(x, y));
                assert_eq!(m.abort_row(x)[y], m.a(x, y));
            }
        }
    }

    #[test]
    fn digest_ignores_dirty_bits() {
        // The digest fingerprints the *statistics*, not cache bookkeeping:
        // two rounds reading the same matrices must agree even if one view
        // has pending dirty bits and the other was acknowledged.
        let mut a = MergedStats::new(2);
        a.add_abort(0, [1].into_iter());
        let mut b = a.clone();
        b.clear_dirty();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn merge_overwrites_previous_content() {
        let mut t = ThreadStats::new(2);
        t.register_abort(0, [1].into_iter());
        let mut m = MergedStats::new(2);
        m.merge_from([&t].into_iter());
        m.merge_from([&t].into_iter());
        // Re-merging the same input must not double-count.
        assert_eq!(m.a(0, 1), 1);
        assert_eq!(m.e(0), 1);
    }
}
