//! The probabilistic inference of conflict relations (Alg. 5).
//!
//! For every pair of atomic blocks `(x, y)` the merged statistics yield:
//!
//! * the **conditional** probability that `x` aborts given `y` was running
//!   concurrently — `P(x aborts | x‖y) = a_xy / (c_xy + a_xy)`;
//! * the **conjunctive** probability of an abort of `x` with `y` running —
//!   `P(x aborts ∧ x‖y) = a_xy / e_x`.
//!
//! A pair is serialized when the conjunctive probability clears the
//! absolute threshold `Th1` (is the pattern *frequent enough to matter*?)
//! **and** the conditional probability clears the `Th2`-th percentile of a
//! Gaussian fitted to the conditional probabilities of `x`'s whole row (is
//! `y` *among the most suspicious peers*, rather than a false positive of
//! the imprecise active-transactions probing?).

use seer_runtime::trace::{PairDecision, RowTrace, Verdict};
use seer_runtime::BlockId;

use crate::gaussian::{gaussian_percentile, mean_variance};
use crate::stats::MergedStats;

/// Inference thresholds (self-tuned by the hill climber at run time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// Lower bound on the conjunctive probability `P(x aborts ∧ x‖y)`.
    pub th1: f64,
    /// Percentile cut-off (in `[0, 1]`) on the conditional probability.
    pub th2: f64,
}

impl Default for Thresholds {
    /// The paper's initial values: `Th1 = 0.3`, `Th2 = 0.8`.
    fn default() -> Self {
        Self { th1: 0.3, th2: 0.8 }
    }
}

impl Thresholds {
    /// Clamps both thresholds into the unit square (the hill climber's
    /// search space).
    pub fn clamped(self) -> Self {
        Self {
            th1: self.th1.clamp(0.0, 1.0),
            th2: self.th2.clamp(0.0, 1.0),
        }
    }
}

/// `P(x aborts | x‖y)`; 0 when the pair was never observed together.
pub fn conditional_abort_probability(stats: &MergedStats, x: BlockId, y: BlockId) -> f64 {
    let a = stats.a(x, y) as f64;
    let c = stats.c(x, y) as f64;
    if a + c == 0.0 {
        0.0
    } else {
        a / (a + c)
    }
}

/// `P(x aborts ∧ x‖y)`; 0 when `x` was never executed.
pub fn conjunctive_abort_probability(stats: &MergedStats, x: BlockId, y: BlockId) -> f64 {
    let e = stats.e(x) as f64;
    if e == 0.0 {
        0.0
    } else {
        stats.a(x, y) as f64 / e
    }
}

/// Minimum standard deviation of a row's conditional probabilities for the
/// Th2 percentile filter to be applied.
///
/// The Th2 condition exists to separate genuinely conflicting partners
/// from false positives of the imprecise `activeTxs` probing — which
/// presumes the conditional probabilities actually *separate*. When one
/// atomic block dominates the mix (vacation runs >80% `make-reservation`),
/// every scan sees it active, the whole row collapses onto the block's
/// marginal abort rate, and the "percentile of a Gaussian with σ≈0"
/// degenerates into thresholding measurement noise. In that regime the
/// conjunctive Th1 condition carries all the usable signal, so the filter
/// steps aside. (Documented as a robustness deviation in `DESIGN.md` §5;
/// the paper does not specify behaviour for degenerate rows.)
pub const MIN_DISCRIMINATIVE_SIGMA: f64 = 0.05;

/// The serialization pairs implied by `stats` under `th`: every `(x, y)`
/// meeting both conditions of Alg. 5 line 72. Pairs are returned once per
/// direction evaluated (the caller applies the symmetric lock assignment of
/// lines 73–74).
pub fn infer_conflict_pairs(stats: &MergedStats, th: Thresholds) -> Vec<(BlockId, BlockId)> {
    infer_conflict_pairs_traced(stats, th, None)
}

/// [`infer_conflict_pairs`] with an explicit discriminative-sigma floor
/// instead of the paper-pinned [`MIN_DISCRIMINATIVE_SIGMA`] constant. The
/// tuner searches this knob; every paper-default path delegates here with
/// the constant, so fixtures are unaffected.
pub fn infer_conflict_pairs_with(
    stats: &MergedStats,
    th: Thresholds,
    min_sigma: f64,
) -> Vec<(BlockId, BlockId)> {
    infer_conflict_pairs_traced_with(stats, th, min_sigma, None)
}

/// [`infer_conflict_pairs`] with decision provenance: when `on_row` is
/// given, it receives one [`RowTrace`] per atomic block carrying the
/// fitted Gaussian, the percentile cutoff actually used and every pair's
/// probabilities and [`Verdict`].
///
/// The untraced entry point delegates here with `on_row = None`, so the
/// serialize decisions and the emitted verdicts come from the *same*
/// comparisons and can never diverge; the trace structures are only built
/// when a callback is present (zero cost otherwise).
pub fn infer_conflict_pairs_traced(
    stats: &MergedStats,
    th: Thresholds,
    on_row: Option<&mut dyn FnMut(RowTrace)>,
) -> Vec<(BlockId, BlockId)> {
    infer_conflict_pairs_traced_with(stats, th, MIN_DISCRIMINATIVE_SIGMA, on_row)
}

/// [`infer_conflict_pairs_traced`] with an explicit discriminative-sigma
/// floor (see [`infer_conflict_pairs_with`]).
pub fn infer_conflict_pairs_traced_with(
    stats: &MergedStats,
    th: Thresholds,
    min_sigma: f64,
    mut on_row: Option<&mut dyn FnMut(RowTrace)>,
) -> Vec<(BlockId, BlockId)> {
    let n = stats.blocks();
    let mut pairs = Vec::new();
    let mut cond = Vec::with_capacity(n);
    let mut row_pairs: Vec<BlockId> = Vec::with_capacity(n);
    for x in 0..n {
        let mut trace = on_row.as_ref().map(|_| Vec::with_capacity(n));
        let fit = compute_row(stats, x, th, min_sigma, &mut cond, &mut row_pairs, trace.as_mut());
        pairs.extend(row_pairs.iter().map(|&y| (x, y)));
        if let (Some(cb), Some(tr)) = (on_row.as_mut(), trace) {
            cb(fit.into_row_trace(x, tr));
        }
    }
    pairs
}

/// The cacheable per-row summary of one Alg. 5 row: the fitted Gaussian,
/// the percentile cutoff actually compared against, and the sigma-floor
/// verdict. Everything a [`RowTrace`] carries except the pair list.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RowFit {
    /// Fitted mean `η` of the row's conditional probabilities.
    pub eta: f64,
    /// Fitted variance `σ²` of the row's conditional probabilities.
    pub sigma2: f64,
    /// The `Th2`-percentile cutoff of the fitted Gaussian.
    pub cutoff: f64,
    /// Whether `σ` cleared the discriminative floor (Th2 participates).
    pub discriminative: bool,
}

impl RowFit {
    /// Rehydrates a full [`RowTrace`] from the cached fit plus a pair list.
    pub fn into_row_trace(self, x: BlockId, pairs: Vec<PairDecision>) -> RowTrace {
        RowTrace {
            x,
            eta: self.eta,
            sigma2: self.sigma2,
            cutoff: self.cutoff,
            discriminative: self.discriminative,
            pairs,
        }
    }
}

/// The single shared row kernel of Alg. 5: fills `cond` with row `x`'s
/// conditional probabilities, fits the Gaussian, and rewrites `out_pairs`
/// with the serialized partners `y` of `x` (in ascending `y`). When
/// `trace` is given, one [`PairDecision`] per `y` is appended to it — the
/// verdicts come from the *same* comparisons that emitted the pairs, so
/// traced and untraced decisions can never diverge.
///
/// Every inference entry point — the free full-recompute functions above
/// and the incremental [`crate::InferenceEngine`] — funnels through this
/// kernel, which is what makes cached rows bit-identical to fresh ones.
pub(crate) fn compute_row(
    stats: &MergedStats,
    x: BlockId,
    th: Thresholds,
    min_sigma: f64,
    cond: &mut Vec<f64>,
    out_pairs: &mut Vec<BlockId>,
    mut trace: Option<&mut Vec<PairDecision>>,
) -> RowFit {
    let commit_row = stats.commit_row(x);
    let abort_row = stats.abort_row(x);
    cond.clear();
    cond.extend(abort_row.iter().zip(commit_row).map(|(&a, &c)| {
        let (a, c) = (a as f64, c as f64);
        if a + c == 0.0 {
            0.0
        } else {
            a / (a + c)
        }
    }));
    let (eta, sigma2) = mean_variance(cond);
    let discriminative = sigma2.sqrt() >= min_sigma;
    let cutoff = gaussian_percentile(eta, sigma2, th.th2);
    // e_x is row-constant: hoist the load, float conversion and the
    // zero-executions test out of the pair loop. The division itself stays
    // per-pair (`a / e_x`) — a reciprocal multiply would round differently
    // and break fixture bit-identity.
    let e = stats.e(x) as f64;
    out_pairs.clear();
    for (y, &cond_p) in cond.iter().enumerate() {
        let conj = if e == 0.0 { 0.0 } else { abort_row[y] as f64 / e };
        // Strict inequalities as in the paper; the Th2 percentile only
        // participates when the row carries discriminative signal.
        let conjunctive_ok = conj > th.th1;
        let conditional_ok = !discriminative || cond_p > cutoff;
        if conjunctive_ok && conditional_ok {
            out_pairs.push(y);
        }
        if let Some(tr) = trace.as_mut() {
            tr.push(PairDecision {
                y,
                conditional: cond_p,
                conjunctive: conj,
                verdict: Verdict::from_checks(conjunctive_ok, conditional_ok),
            });
        }
    }
    RowFit {
        eta,
        sigma2,
        cutoff,
        discriminative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::ThreadStats;

    /// Builds merged stats where block 0 aborted `a01` times with 1 active
    /// and committed `c01` times with 1 active, out of `e0` executions.
    fn stats_pairwise(blocks: usize, fill: impl Fn(&mut ThreadStats)) -> MergedStats {
        let mut t = ThreadStats::new(blocks);
        fill(&mut t);
        let mut m = MergedStats::new(blocks);
        m.merge_from([&t].into_iter());
        m
    }

    #[test]
    fn probabilities_match_definitions() {
        let m = stats_pairwise(2, |t| {
            for _ in 0..30 {
                t.register_abort(0, [1].into_iter());
            }
            for _ in 0..10 {
                t.register_commit(0, [1].into_iter());
            }
            for _ in 0..60 {
                t.register_commit(0, [].into_iter());
            }
        });
        // a01=30, c01=10, e0=100.
        assert!((conditional_abort_probability(&m, 0, 1) - 0.75).abs() < 1e-12);
        assert!((conjunctive_abort_probability(&m, 0, 1) - 0.30).abs() < 1e-12);
    }

    #[test]
    fn zero_observations_give_zero_probability() {
        let m = stats_pairwise(2, |_| {});
        assert_eq!(conditional_abort_probability(&m, 0, 1), 0.0);
        assert_eq!(conjunctive_abort_probability(&m, 0, 1), 0.0);
    }

    #[test]
    fn frequent_conflicter_is_detected_rare_one_is_not() {
        // Block 0 aborts heavily when 1 is around, rarely when 2 is around.
        let m = stats_pairwise(3, |t| {
            for _ in 0..40 {
                t.register_abort(0, [1].into_iter());
            }
            for _ in 0..2 {
                t.register_abort(0, [2].into_iter());
            }
            for _ in 0..5 {
                t.register_commit(0, [1].into_iter());
            }
            for _ in 0..30 {
                t.register_commit(0, [2].into_iter());
            }
            for _ in 0..23 {
                t.register_commit(0, [].into_iter());
            }
        });
        // e0 = 100; conj(0,1) = 0.40 > Th1; conj(0,2) = 0.02 < Th1.
        let pairs = infer_conflict_pairs(&m, Thresholds::default());
        assert!(pairs.contains(&(0, 1)), "pairs = {pairs:?}");
        assert!(!pairs.contains(&(0, 2)));
        assert!(!pairs.contains(&(0, 0)));
    }

    #[test]
    fn th1_suppresses_rare_patterns_regardless_of_conditional() {
        // Conditional probability is 1.0 (always aborts when 1 is around)
        // but it only happened twice in 100 executions: conjunctive 0.02.
        let m = stats_pairwise(2, |t| {
            for _ in 0..2 {
                t.register_abort(0, [1].into_iter());
            }
            for _ in 0..98 {
                t.register_commit(0, [].into_iter());
            }
        });
        assert_eq!(conditional_abort_probability(&m, 0, 1), 1.0);
        let pairs = infer_conflict_pairs(&m, Thresholds::default());
        assert!(pairs.is_empty(), "pairs = {pairs:?}");
        // Lowering Th1 lets the pair through.
        let pairs = infer_conflict_pairs(
            &m,
            Thresholds {
                th1: 0.01,
                th2: 0.8,
            },
        );
        assert!(pairs.contains(&(0, 1)));
    }

    #[test]
    fn th2_percentile_separates_suspects_from_noise() {
        // Block 0 sees blocks 1..=4 equally often; only 1 truly conflicts.
        // The false positives have low conditional probability; the
        // percentile cut must single out block 1.
        let m = stats_pairwise(5, |t| {
            for _ in 0..35 {
                t.register_abort(0, [1].into_iter());
            }
            for y in 2..5usize {
                for _ in 0..4 {
                    t.register_abort(0, [y].into_iter());
                }
            }
            for _ in 0..5 {
                t.register_commit(0, [1].into_iter());
            }
            for y in 2..5usize {
                for _ in 0..16 {
                    t.register_commit(0, [y].into_iter());
                }
            }
        });
        // e0 = 35+12+5+48 = 100. cond(0,1)=0.875, cond(0,y)=0.2.
        let pairs = infer_conflict_pairs(
            &m,
            Thresholds {
                th1: 0.03,
                th2: 0.8,
            },
        );
        assert!(pairs.contains(&(0, 1)), "pairs = {pairs:?}");
        for y in 2..5 {
            assert!(!pairs.contains(&(0, y)), "false positive {y}: {pairs:?}");
        }
    }

    #[test]
    fn self_conflicts_are_representable() {
        // x = y is allowed: a block contending with instances of itself.
        let m = stats_pairwise(2, |t| {
            for _ in 0..50 {
                t.register_abort(0, [0].into_iter());
            }
            for _ in 0..50 {
                t.register_commit(0, [].into_iter());
            }
        });
        let pairs = infer_conflict_pairs(&m, Thresholds::default());
        assert!(pairs.contains(&(0, 0)), "pairs = {pairs:?}");
    }

    #[test]
    fn traced_inference_agrees_with_untraced() {
        let m = stats_pairwise(5, |t| {
            for _ in 0..35 {
                t.register_abort(0, [1].into_iter());
            }
            for y in 2..5usize {
                for _ in 0..4 {
                    t.register_abort(0, [y].into_iter());
                }
            }
            for _ in 0..5 {
                t.register_commit(0, [1].into_iter());
            }
            for y in 2..5usize {
                for _ in 0..16 {
                    t.register_commit(0, [y].into_iter());
                }
            }
        });
        let th = Thresholds { th1: 0.03, th2: 0.8 };
        let plain = infer_conflict_pairs(&m, th);
        let mut rows = Vec::new();
        let traced = infer_conflict_pairs_traced(&m, th, Some(&mut |r| rows.push(r)));
        assert_eq!(plain, traced);
        assert_eq!(rows.len(), 5, "one row trace per block");
        // The serialized pairs are exactly the Serialize verdicts.
        let from_verdicts: Vec<(usize, usize)> = rows
            .iter()
            .flat_map(|r| {
                r.pairs
                    .iter()
                    .filter(|p| p.verdict.serialize())
                    .map(move |p| (r.x, p.y))
            })
            .collect();
        assert_eq!(from_verdicts, plain);
        // Probabilities in the trace are the real ones, bit for bit.
        for r in &rows {
            for p in &r.pairs {
                assert_eq!(p.conditional, conditional_abort_probability(&m, r.x, p.y));
                assert_eq!(p.conjunctive, conjunctive_abort_probability(&m, r.x, p.y));
            }
        }
    }

    #[test]
    fn sigma_floor_gates_the_percentile_filter() {
        // cond(0,1)=0.875 towers over cond(0,2..5)=0.2 — the row is
        // discriminative at the default floor, and the percentile filter
        // rejects the low-conditional pairs. Raising the floor above the
        // row's sigma disables the filter and lets every Th1 survivor in.
        let m = stats_pairwise(5, |t| {
            for _ in 0..35 {
                t.register_abort(0, [1].into_iter());
            }
            for y in 2..5usize {
                for _ in 0..4 {
                    t.register_abort(0, [y].into_iter());
                }
            }
            for _ in 0..5 {
                t.register_commit(0, [1].into_iter());
            }
            for y in 2..5usize {
                for _ in 0..16 {
                    t.register_commit(0, [y].into_iter());
                }
            }
        });
        let th = Thresholds { th1: 0.03, th2: 0.8 };
        // At the paper constant, the _with variant is the plain one.
        assert_eq!(
            infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA),
            infer_conflict_pairs(&m, th)
        );
        let strict = infer_conflict_pairs_with(&m, th, MIN_DISCRIMINATIVE_SIGMA);
        assert!(!strict.contains(&(0, 2)));
        // A floor above any realistic sigma: Th2 never participates.
        let lax = infer_conflict_pairs_with(&m, th, 10.0);
        assert!(lax.contains(&(0, 2)), "pairs = {lax:?}");
    }

    #[test]
    fn thresholds_clamp() {
        let t = Thresholds { th1: -0.2, th2: 1.7 }.clamped();
        assert_eq!(t.th1, 0.0);
        assert_eq!(t.th2, 1.0);
    }
}
