//! # seer — probabilistic scheduling for hardware transactional memory
//!
//! A faithful reproduction of **Seer** (Diegues, Romano, Garbatov —
//! SPAA 2015): the first transaction scheduler designed for commodity
//! best-effort HTM, where aborts carry only a coarse cause category and
//! never identify the conflicting transaction.
//!
//! Seer compensates for that information gap probabilistically:
//!
//! 1. [`active::ActiveTxs`] — threads announce the atomic block they are
//!    executing in a synchronization-free array;
//! 2. [`stats`] — every commit/abort scans the announcements into
//!    per-thread frequency matrices;
//! 3. [`inference`] — periodically, conditional and conjunctive abort
//!    probabilities are derived per block pair, and a pair is declared
//!    conflicting when `P(x aborts ∧ x‖y) > Th1` and `P(x aborts | x‖y)`
//!    exceeds the `Th2`-th percentile of a Gaussian fitted to the row
//!    ([`gaussian`]);
//! 4. [`locktable::LockTable`] — the inferred pairs become a dynamic
//!    fine-grained locking scheme (one lock per atomic block) acquired on a
//!    transaction's last hardware attempt;
//! 5. [`hillclimb::HillClimber`] — `Th1`/`Th2` self-tune online from
//!    throughput feedback;
//! 6. *core locks* — one lock per physical core, taken after capacity
//!    aborts, stop SMT siblings from thrashing their shared L1.
//!
//! The scheduler itself is [`scheduler::Seer`]; its mechanisms toggle
//! individually through [`config::SeerConfig`] to support the paper's
//! Figure 4/5 ablations.
//!
//! ## Quick example
//!
//! ```
//! use seer::{Seer, SeerConfig};
//! use seer_runtime::synthetic::{SyntheticSpec, SyntheticWorkload};
//! use seer_runtime::{run, DriverConfig};
//!
//! let spec = SyntheticSpec::low_contention_hashmap(50);
//! let blocks = spec.blocks.len();
//! let mut workload = SyntheticWorkload::new(spec, 4);
//! let mut seer = Seer::new(SeerConfig::full(), 4, blocks);
//! let metrics = run(&mut workload, &mut seer, &DriverConfig::paper_machine(4, 1));
//! assert_eq!(metrics.commits, 200);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod config;
pub mod engine;
pub mod gaussian;
pub mod hillclimb;
pub mod inference;
pub mod locktable;
pub mod scheduler;
pub mod stats;

pub use config::{ProfilingCosts, SeerConfig, SeerParams};
pub use engine::InferenceEngine;
pub use hillclimb::HillClimber;
pub use inference::{
    infer_conflict_pairs, infer_conflict_pairs_traced, infer_conflict_pairs_traced_with,
    infer_conflict_pairs_with, RowFit, Thresholds,
};
pub use locktable::LockTable;
pub use scheduler::{Seer, SeerCounters, UpdateRecord};
