//! The `locksToAcquire` table (paper Table 2, Fig. 2 step 6).
//!
//! Row `x` lists the transaction locks block `x` must acquire on its last
//! hardware attempt. The periodic update builds a fresh table from the
//! inferred conflict pairs — applying the symmetric assignment of Alg. 5
//! lines 73–74 (contending blocks take *each other's* locks) — sorts every
//! row (the global acquisition order that avoids deadlocks, line 75), and
//! swaps it in atomically. In the real system the swap is a pointer
//! indirection; in the single-threaded simulation a generation counter
//! stands in for the pointer so tests can observe the swap.

use seer_runtime::BlockId;

/// The dynamic locking scheme.
///
/// ```
/// use seer::LockTable;
///
/// let mut table = LockTable::new(3);
/// table.rebuild(&[(0, 2)]); // blocks 0 and 2 conflict
/// assert_eq!(table.row(0), &[2]); // 0 takes 2's lock...
/// assert_eq!(table.row(2), &[0]); // ...and vice versa
/// assert!(table.row(1).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct LockTable {
    rows: Vec<Vec<BlockId>>,
    generation: u64,
}

impl LockTable {
    /// An empty scheme over `blocks` atomic blocks (no serialization).
    pub fn new(blocks: usize) -> Self {
        Self {
            rows: vec![Vec::new(); blocks],
            generation: 0,
        }
    }

    /// Number of atomic blocks.
    pub fn blocks(&self) -> usize {
        self.rows.len()
    }

    /// Locks block `x` must acquire (sorted ascending).
    pub fn row(&self, x: BlockId) -> &[BlockId] {
        &self.rows[x]
    }

    /// True when no row requires any lock.
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(Vec::is_empty)
    }

    /// Generation counter, bumped by every swap (the "indirection pointer").
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total number of (block, lock) entries.
    pub fn total_entries(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Rebuilds the table from inferred conflict `pairs` and swaps it in.
    ///
    /// For each inferred pair `(x, y)`: `x` takes `y`'s lock and `y` takes
    /// `x`'s lock (Alg. 5 lines 73–74). Rows are deduplicated and sorted.
    pub fn rebuild(&mut self, pairs: &[(BlockId, BlockId)]) {
        let blocks = self.rows.len();
        // Rows are cleared and refilled in place: after the first few
        // rounds their capacities stabilize and a rebuild allocates
        // nothing (the steady-state discipline of DESIGN.md §16).
        for row in &mut self.rows {
            row.clear();
        }
        for &(x, y) in pairs {
            debug_assert!(x < blocks && y < blocks, "pair ({x},{y}) out of range");
            self.rows[x].push(y);
            self.rows[y].push(x);
        }
        for row in &mut self.rows {
            row.sort_unstable();
            row.dedup();
        }
        self.generation += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let t = LockTable::new(3);
        assert!(t.is_empty());
        assert_eq!(t.generation(), 0);
        assert_eq!(t.row(0), &[] as &[BlockId]);
    }

    #[test]
    fn rebuild_applies_symmetric_assignment() {
        let mut t = LockTable::new(4);
        t.rebuild(&[(0, 2)]);
        assert_eq!(t.row(0), &[2]);
        assert_eq!(t.row(2), &[0]);
        assert_eq!(t.row(1), &[] as &[BlockId]);
        assert_eq!(t.generation(), 1);
    }

    #[test]
    fn rows_are_sorted_and_deduped() {
        let mut t = LockTable::new(5);
        // (0,3) and (3,0) both inferred: symmetric insertion would
        // duplicate without dedup.
        t.rebuild(&[(0, 3), (3, 0), (0, 1), (4, 0)]);
        assert_eq!(t.row(0), &[1, 3, 4]);
        assert_eq!(t.row(3), &[0]);
        assert_eq!(t.row(1), &[0]);
        assert_eq!(t.row(4), &[0]);
    }

    #[test]
    fn self_pair_takes_own_lock() {
        let mut t = LockTable::new(2);
        t.rebuild(&[(1, 1)]);
        assert_eq!(t.row(1), &[1]);
        assert_eq!(t.row(0), &[] as &[BlockId]);
    }

    #[test]
    fn rebuild_replaces_not_accumulates() {
        let mut t = LockTable::new(3);
        t.rebuild(&[(0, 1)]);
        t.rebuild(&[(1, 2)]);
        assert_eq!(t.row(0), &[] as &[BlockId]);
        assert_eq!(t.row(1), &[2]);
        assert_eq!(t.row(2), &[1]);
        assert_eq!(t.generation(), 2);
        assert_eq!(t.total_entries(), 2);
    }
}
