//! Gaussian distribution machinery for the Th2 percentile cut-off.
//!
//! Seer fits a normal distribution `N(η, σ²)` to the row of conditional
//! abort probabilities `P(x aborts | x‖y)` and serializes only the
//! transactions `y` whose probability falls above the `Th2`-th percentile
//! (paper §4, Alg. 5 line 72). That requires the inverse normal CDF, which
//! we implement with Acklam's rational approximation (relative error
//! < 1.15e-9 over the open unit interval), plus the forward CDF via a
//! Hart/Abramowitz–Stegun `erf` approximation for tests and diagnostics.

/// Error function approximation (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF Φ(z).
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF Φ⁻¹(p) (Acklam's algorithm).
///
/// # Panics
/// If `p` is outside the open interval `(0, 1)`.
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile of p={p} outside (0,1)");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The `percentile`-th percentile of `N(mean, variance)` — the cut-off
/// value used in Alg. 5 line 72.
///
/// A degenerate distribution (zero variance) returns `mean` for any
/// percentile: every probability in the row then ties, and the conjunctive
/// Th1 condition alone decides serialization.
pub fn gaussian_percentile(mean: f64, variance: f64, percentile: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&percentile));
    if variance <= 0.0 {
        return mean;
    }
    let p = percentile.clamp(1e-9, 1.0 - 1e-9);
    mean + variance.sqrt() * std_normal_quantile(p)
}

/// Mean and (population) variance of a slice; `(0, 0)` for an empty slice.
pub fn mean_variance(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!(erf(6.0) > 0.999_999);
    }

    #[test]
    fn cdf_known_values() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn quantile_known_values() {
        assert!(std_normal_quantile(0.5).abs() < 1e-8);
        assert!((std_normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((std_normal_quantile(0.8) - 0.841_621).abs() < 1e-4);
        assert!((std_normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
        assert!((std_normal_quantile(0.001) + 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.99] {
            let z = std_normal_quantile(p);
            assert!(
                (std_normal_cdf(z) - p).abs() < 1e-6,
                "roundtrip failed at p={p}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "outside (0,1)")]
    fn quantile_rejects_unit_boundary() {
        std_normal_quantile(1.0);
    }

    #[test]
    fn percentile_scales_and_shifts() {
        // 80th percentile of N(0.5, 0.01): 0.5 + 0.1 * 0.8416.
        let v = gaussian_percentile(0.5, 0.01, 0.8);
        assert!((v - (0.5 + 0.1 * 0.841_621)).abs() < 1e-4);
        // Median is the mean.
        assert!((gaussian_percentile(0.3, 0.04, 0.5) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn percentile_degenerate_variance() {
        assert_eq!(gaussian_percentile(0.7, 0.0, 0.99), 0.7);
        assert_eq!(gaussian_percentile(0.7, -1.0, 0.01), 0.7);
    }

    #[test]
    fn mean_variance_basics() {
        let (m, v) = mean_variance(&[]);
        assert_eq!((m, v), (0.0, 0.0));
        let (m, v) = mean_variance(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(v, 0.0);
        let (m, v) = mean_variance(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        assert!((v - 1.25).abs() < 1e-12);
    }
}
