//! # seer-repro — umbrella crate
//!
//! Re-exports the whole Seer reproduction workspace under one roof for the
//! examples and cross-crate integration tests. Library users should depend
//! on the individual crates:
//!
//! * [`seer`] — the Seer scheduler (the paper's contribution);
//! * [`seer_runtime`] — driver, scheduler interface, workload interface;
//! * [`seer_htm`] — the best-effort HTM model;
//! * [`seer_sim`] — the discrete-event simulation substrate;
//! * [`seer_baselines`] — HLE / RTM / SCM / ATS;
//! * [`seer_stamp`] — the STAMP-like workload models;
//! * [`seer_harness`] — the experiment harness regenerating the paper's
//!   tables and figures.

pub use seer;
pub use seer_baselines;
pub use seer_harness;
pub use seer_htm;
pub use seer_runtime;
pub use seer_sim;
pub use seer_stamp;
